package daemon

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"dynplace/internal/core"
	"dynplace/internal/forecast"
	"dynplace/internal/obs"
	"dynplace/internal/router"
	"dynplace/internal/scheduler"
)

// cycleSpanNames is the closed set of control-cycle span names the
// daemon records latency histograms for. Every histogram is
// pre-registered at construction so runCycle — which runs under d.mu —
// never touches a registry lock; per-zone solve spans (zone_solve:N)
// are dynamic by zone and tracked by the dynplace_zone_solve
// histograms instead.
var cycleSpanNames = []string{
	"demand_update",
	"inventory_snapshot",
	"forecast",
	"build_problem",
	"solve",
	"shard_rebalance",
	"merge_verify",
	"extract",
	"explain",
	"apply",
	"publish",
	"journal",
	"snapshot",
}

// obsState bundles the daemon's observability surface: the Prometheus
// registry behind GET /metrics/prom, the cycle tracer behind
// GET /debug/cycles, and every pre-registered hot-path instrument.
// Collect-time callbacks registered here may take d.mu (the encoder
// invokes them with no registry locks held); everything touched from
// inside runCycle is a plain atomic instrument.
type obsState struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	cycleDur    *obs.Histogram
	spanDur     map[string]*obs.Histogram
	zoneDur     []*obs.Histogram
	cycleErrors *obs.Counter
	slowCycles  *obs.Counter

	// explainOutcomes and explainDenials are the flight recorder's
	// counter families, pre-registered over the closed core.Outcomes
	// and core.Bindings sets so runCycle increments without touching a
	// registry lock.
	explainOutcomes map[string]*obs.Counter
	explainDenials  map[string]*obs.Counter
	slowCaptures    *obs.Counter

	walAppend *obs.Histogram
	walFsync  *obs.Histogram
	snapWrite *obs.Histogram

	// slowCycleSeconds is the wall-clock duration past which a cycle
	// logs a warning (<= 0 disables).
	slowCycleSeconds float64

	// profileArmed and lastProfile implement slow-cycle CPU profile
	// auto-capture: a slow cycle arms the profiler, the next cycle runs
	// under it, and the resulting profile is retained for the debug
	// bundle. Both are mutated only from runCycle/recordCycleObs, which
	// run under d.mu.
	profileArmed bool
	lastProfile  *capturedProfile
}

// Latency bucket layouts, all in seconds.
var (
	// cycleBuckets spans 0.5ms–16s: sub-millisecond no-op cycles up to
	// multi-second flat solves on large clusters.
	cycleBuckets = obs.ExpBuckets(0.0005, 2, 16)
	// spanBuckets spans 50µs–1.6s for individual pipeline stages.
	spanBuckets = obs.ExpBuckets(0.00005, 2, 16)
	// ioBuckets spans 20µs–10s for WAL append/fsync and snapshot
	// writes (fsync tail latencies on loaded disks reach seconds).
	ioBuckets = obs.ExpBuckets(0.00002, 3, 12)
	// httpBuckets spans 100µs–1.6s for API handler latencies.
	httpBuckets = obs.ExpBuckets(0.0001, 2, 15)
	// dispatchBuckets spans 100ns–1.7ms for the router hot path.
	dispatchBuckets = obs.ExpBuckets(1e-7, 4, 8)
)

// newObsState builds the registry, registers every metric family and
// wires the collect-time callbacks. It must run after the planner,
// router and store exist; d.mu is not yet shared at that point.
func (d *Daemon) newObsState(shards int, traceCycles int) *obsState {
	reg := obs.NewRegistry()
	o := &obsState{
		reg:     reg,
		tracer:  obs.NewTracer(traceCycles),
		spanDur: make(map[string]*obs.Histogram, len(cycleSpanNames)),
	}

	// --- control cycle ---
	o.cycleDur = reg.Histogram("dynplace_cycle_duration_seconds",
		"Wall-clock duration of each control cycle.", cycleBuckets)
	for _, span := range cycleSpanNames {
		o.spanDur[span] = reg.Histogram("dynplace_cycle_span_duration_seconds",
			"Wall-clock duration of one control-cycle pipeline stage.",
			spanBuckets, "span", span)
	}
	o.zoneDur = make([]*obs.Histogram, shards)
	for s := range o.zoneDur {
		o.zoneDur[s] = reg.Histogram("dynplace_zone_solve_duration_seconds",
			"Wall-clock duration of one zone's placement solve.",
			spanBuckets, "zone", strconv.Itoa(s))
	}
	o.cycleErrors = reg.Counter("dynplace_cycle_errors_total",
		"Control cycles whose planning failed.")
	o.slowCycles = reg.Counter("dynplace_slow_cycles_total",
		"Control cycles slower than the slow-cycle warning threshold.")
	o.slowCaptures = reg.Counter("dynplace_slow_cycle_captures_total",
		"CPU profiles captured by the slow-cycle auto-capture.")

	// --- decision-provenance flight recorder ---
	o.explainOutcomes = make(map[string]*obs.Counter, len(core.Outcomes))
	for _, outcome := range core.Outcomes {
		o.explainOutcomes[outcome] = reg.Counter("dynplace_explain_decisions_total",
			"Per-application placement decisions explained, by outcome.",
			"outcome", outcome)
	}
	o.explainDenials = make(map[string]*obs.Counter, len(core.Bindings))
	for _, binding := range core.Bindings {
		o.explainDenials[binding] = reg.Counter("dynplace_explain_denials_total",
			"Denied applications explained, by binding constraint.",
			"binding", binding)
	}
	reg.GaugeFunc("dynplace_explain_records",
		"Cycle explanations retained in the flight recorder.",
		func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(d.explain.Len())
		})

	// --- build identity ---
	reg.Gauge("dynplace_build_info",
		"Constant 1; the build version and Go runtime ride as labels.",
		"version", BuildVersion(), "go_version", runtime.Version()).Set(1)
	reg.CounterFunc("dynplace_cycles_total",
		"Control cycles run (lifetime, across restarts).",
		func() float64 { return float64(d.cycles.Load()) })
	reg.CounterFunc("dynplace_infeasible_cycles_total",
		"Control cycles whose placement problem had no feasible solution.",
		func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(d.planner.InfeasibleCycles())
		})
	for _, action := range []string{
		scheduler.ActionStart, scheduler.ActionSuspend, scheduler.ActionResume,
		scheduler.ActionMigrate, scheduler.ActionRescue,
	} {
		action := action
		reg.CounterFunc("dynplace_actions_total",
			"Batch placement actions applied, by kind.",
			func() float64 {
				d.mu.Lock()
				defer d.mu.Unlock()
				return float64(d.actions.Get(action))
			}, "action", action)
	}

	// --- placement gauges (lock-free: last published snapshot) ---
	snapGauge := func(name, help string, fn func(*PlacementSnapshot) float64) {
		reg.GaugeFunc(name, help, func() float64 { return fn(d.placement.Load()) })
	}
	snapGauge("dynplace_web_apps", "Registered web applications as of the last cycle.",
		func(s *PlacementSnapshot) float64 { return float64(len(s.Web)) })
	snapGauge("dynplace_live_jobs", "Live (submitted, incomplete) batch jobs as of the last cycle.",
		func(s *PlacementSnapshot) float64 { return float64(len(s.Jobs)) })
	snapGauge("dynplace_active_nodes", "Inventory nodes offering capacity.",
		func(s *PlacementSnapshot) float64 { return float64(countActive(s.Nodes)) })
	snapGauge("dynplace_infeasible_streak", "Consecutive infeasible cycles (0 when healthy).",
		func(s *PlacementSnapshot) float64 { return float64(s.InfeasibleStreak) })
	snapGauge("dynplace_omega_g_mhz", "Aggregate CPU devoted to batch work (the paper's omega_G).",
		func(s *PlacementSnapshot) float64 { return s.OmegaGMHz })
	snapGauge("dynplace_inventory_version", "Node-inventory version the last cycle planned against.",
		func(s *PlacementSnapshot) float64 { return float64(s.InventoryVersion) })
	snapGauge("dynplace_shard_imbalance", "Zone utilization spread (max minus min) of the last sharded cycle.",
		func(s *PlacementSnapshot) float64 { _, imb := shardSpread(s.Shards); return imb })
	snapGauge("dynplace_max_shard_utilization", "Hottest zone's utilization in the last sharded cycle.",
		func(s *PlacementSnapshot) float64 { m, _ := shardSpread(s.Shards); return m })
	reg.GaugeSampler("dynplace_web_utility",
		"Predicted relative performance per web application.",
		func() []obs.Sample {
			snap := d.placement.Load()
			out := make([]obs.Sample, 0, len(snap.Web))
			for _, w := range snap.Web {
				out = append(out, obs.Sample{Labels: []string{"app", w.Name}, Value: w.Utility})
			}
			return out
		})
	reg.GaugeSampler("dynplace_web_alloc_mhz",
		"CPU allocation per web application.",
		func() []obs.Sample {
			snap := d.placement.Load()
			out := make([]obs.Sample, 0, len(snap.Web))
			for _, w := range snap.Web {
				out = append(out, obs.Sample{Labels: []string{"app", w.Name}, Value: w.AllocMHz})
			}
			return out
		})

	// --- demand forecaster (empty when forecast-driven control is off) ---
	forecastSamples := func(value func(forecast.Stats) float64) func() []obs.Sample {
		return func() []obs.Sample {
			d.mu.Lock()
			defer d.mu.Unlock()
			if !d.planner.ForecastEnabled() {
				return nil
			}
			apps := d.planner.WebApps()
			names := make([]string, 0, len(apps))
			for _, w := range apps {
				names = append(names, w.Name)
			}
			sort.Strings(names)
			out := make([]obs.Sample, 0, len(names))
			for _, name := range names {
				st, ok := d.planner.ForecastStats(name)
				if !ok {
					continue
				}
				out = append(out, obs.Sample{Labels: []string{"app", name}, Value: value(st)})
			}
			return out
		}
	}
	reg.GaugeSampler("dynplace_forecast_abs_error",
		"Absolute error of the last scored demand prediction, per application (req/s).",
		forecastSamples(func(s forecast.Stats) float64 { return s.LastAbsError }))
	reg.GaugeSampler("dynplace_forecast_mape",
		"Mean absolute percentage error of scored demand predictions, per application.",
		forecastSamples(func(s forecast.Stats) float64 { return s.MAPE }))
	reg.GaugeSampler("dynplace_forecast_predicted_rate",
		"Latest predicted next-cycle arrival rate, per application (req/s).",
		forecastSamples(func(s forecast.Stats) float64 { return s.PendingPredicted }))

	// --- request router ---
	routerIns := &router.Instruments{
		Dispatched: reg.Counter("dynplace_router_requests_total",
			"Router dispatch calls by outcome.", "result", "dispatched"),
		Queued: reg.Counter("dynplace_router_requests_total",
			"Router dispatch calls by outcome.", "result", "queued"),
		Rejected: reg.Counter("dynplace_router_requests_total",
			"Router dispatch calls by outcome.", "result", "rejected"),
		Unknown: reg.Counter("dynplace_router_requests_total",
			"Router dispatch calls by outcome.", "result", "unknown"),
		Latency: reg.Histogram("dynplace_router_dispatch_duration_seconds",
			"Latency of one router dispatch decision.", dispatchBuckets),
	}
	d.router.SetInstruments(routerIns)
	// Per-app dispatch series. routerSamples snapshots once per scrape
	// per family and renders one stably ordered sample per application.
	routerSamples := func(value func(router.Stats) float64) func() []obs.Sample {
		return func() []obs.Sample {
			stats := d.router.Snapshot()
			names := make([]string, 0, len(stats))
			for name := range stats {
				names = append(names, name)
			}
			sort.Strings(names)
			out := make([]obs.Sample, 0, len(names))
			for _, name := range names {
				out = append(out, obs.Sample{
					Labels: []string{"app", name},
					Value:  value(stats[name]),
				})
			}
			return out
		}
	}
	reg.GaugeSampler("dynplace_router_queued_requests",
		"Requests parked in each application's overload-protection queue.",
		routerSamples(func(s router.Stats) float64 { return float64(s.QueueDepth) }))
	reg.GaugeSampler("dynplace_dispatch_queue_depth",
		"Current overload-protection queue occupancy per application.",
		routerSamples(func(s router.Stats) float64 { return float64(s.QueueDepth) }))
	reg.CounterSampler("dynplace_dispatch_queued_total",
		"Requests that ever entered the overload-protection queue, per application.",
		routerSamples(func(s router.Stats) float64 { return float64(s.QueuedTotal) }))
	reg.CounterSampler("dynplace_dispatch_requests_total",
		"Requests dispatched to instances, per application.",
		routerSamples(func(s router.Stats) float64 { return float64(s.Dispatched) }))
	reg.CounterSampler("dynplace_dispatch_rejected_total",
		"Requests dropped by overload protection, per application.",
		routerSamples(func(s router.Stats) float64 { return float64(s.Rejected) }))

	// --- durability ---
	o.walAppend = reg.Histogram("dynplace_wal_append_duration_seconds",
		"End-to-end latency of one WAL append (write + fsync).", ioBuckets)
	o.walFsync = reg.Histogram("dynplace_wal_fsync_duration_seconds",
		"Latency of the WAL fsync alone.", ioBuckets)
	o.snapWrite = reg.Histogram("dynplace_store_snapshot_duration_seconds",
		"Latency of one compacting snapshot write.", ioBuckets)
	reg.CounterFunc("dynplace_wal_errors_total",
		"Journal appends that failed (durability degraded when nonzero).",
		func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(d.walErrors)
		})
	reg.CounterFunc("dynplace_restarts_total",
		"Recoveries from the durable state store.",
		func() float64 { return float64(d.restarts.Load()) })
	reg.GaugeFunc("dynplace_replay_duration_seconds",
		"Wall-clock duration of the last WAL replay.",
		func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return d.replayDuration.Seconds()
		})
	reg.GaugeFunc("dynplace_replay_records",
		"WAL records applied by the last recovery.",
		func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(d.replayedRecords)
		})
	reg.GaugeFunc("dynplace_recovering",
		"1 while boot-time recovery is pending or WAL replay is running.",
		func() float64 {
			if !d.recovered.Load() || d.recovering.Load() {
				return 1
			}
			return 0
		})
	// The poison reason rides as a label so a poisoned WAL is
	// alertable (dynplace_store_poisoned > 0) and diagnosable from the
	// scrape alone. Reads are lock-free (store.FailedReason).
	reg.GaugeSampler("dynplace_store_poisoned",
		"1 when the durable store refused further writes; the reason label carries why.",
		func() []obs.Sample {
			if d.store == nil {
				return []obs.Sample{{Value: 0}}
			}
			if reason := d.store.FailedReason(); reason != "" {
				return []obs.Sample{{Labels: []string{"reason", reason}, Value: 1}}
			}
			return []obs.Sample{{Value: 0}}
		})

	if d.store != nil {
		d.store.Instrument(o.walAppend, o.walFsync, o.snapWrite)
	}
	return o
}

// httpInstrument is the pre-registered instrument pair for one API
// route.
type httpInstrument struct {
	dur     *obs.Histogram
	byClass [6]*obs.Counter // index = status/100 - 1 (1xx..5xx; 0 spare)
}

// newHTTPInstrument registers the latency histogram for one route and
// shares the per-class response counters.
func (o *obsState) newHTTPInstrument(route string, classes *[6]*obs.Counter) httpInstrument {
	return httpInstrument{
		dur: o.reg.Histogram("dynplace_http_request_duration_seconds",
			"API handler latency by route.", httpBuckets, "route", route),
		byClass: *classes,
	}
}

// responseClasses registers the shared dynplace_http_responses_total
// counters, one per status class.
func (o *obsState) responseClasses() [6]*obs.Counter {
	var out [6]*obs.Counter
	for i := 1; i <= 5; i++ {
		out[i] = o.reg.Counter("dynplace_http_responses_total",
			"API responses by status class.", "class", fmt.Sprintf("%dxx", i))
	}
	return out
}

// recordCycleObs folds one finished cycle trace into the histograms
// and slow-cycle accounting. Runs under d.mu; touches only atomic
// instruments.
func (d *Daemon) recordCycleObs(view obs.TraceView, failed bool) {
	o := d.obs
	if o == nil {
		return
	}
	seconds := float64(view.DurationMicros) / 1e6
	o.cycleDur.Observe(seconds)
	for _, span := range view.Spans {
		if h, ok := o.spanDur[span.Name]; ok {
			h.Observe(float64(span.DurationMicros) / 1e6)
			continue
		}
		// zone_solve:N spans land in the per-zone histogram family.
		if zone, found := strings.CutPrefix(span.Name, "zone_solve:"); found {
			if s, err := strconv.Atoi(zone); err == nil && s >= 0 && s < len(o.zoneDur) {
				o.zoneDur[s].Observe(float64(span.DurationMicros) / 1e6)
			}
		}
	}
	if failed {
		o.cycleErrors.Inc()
	}
	if o.slowCycleSeconds > 0 && seconds > o.slowCycleSeconds {
		o.slowCycles.Inc()
		// Arm the profiler instead of only logging: the next cycle runs
		// under CPU profiling and the capture lands in the debug bundle,
		// so a slow cycle no longer has to be reproduced by hand with
		// pprof attached. A slow streak keeps re-arming, which keeps the
		// retained profile tracking the most recent slow cycle.
		o.profileArmed = true
		d.cfg.Warnf("cycle %d: slow cycle: %.3fs (threshold %.3fs); capturing a CPU profile of the next cycle",
			view.Cycle, seconds, o.slowCycleSeconds)
	}
}
