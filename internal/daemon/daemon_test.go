package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dynplace"
	"dynplace/internal/cluster"
)

func newTestDaemon(t *testing.T) (*Daemon, *SimClock, *httptest.Server) {
	t.Helper()
	cl, err := cluster.Uniform(2, 3000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	clock := NewSimClock()
	d, err := New(Config{
		Cluster:      cl,
		CycleSeconds: 60,
		Costs:        cluster.FreeCostModel(),
		Clock:        clock,
		History:      64,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(d.Stop)
	return d, clock, srv
}

func do(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func jobSpeed(s PlacementSnapshot) float64 {
	var sum float64
	for _, j := range s.Jobs {
		sum += j.SpeedMHz
	}
	return sum
}

func getPlacement(t *testing.T, url string) PlacementSnapshot {
	t.Helper()
	status, body := do(t, http.MethodGet, url+"/placement", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /placement: status %d: %s", status, body)
	}
	var snap PlacementSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("GET /placement: %v", err)
	}
	return snap
}

// TestDaemonReactsToLoadChange is the subsystem's acceptance scenario: a
// daemon under virtual time accepts a web app and a batch job over HTTP,
// and after the app's request rate jumps, the placement served by
// GET /placement shifts CPU from the job to the app across control
// cycles — the paper's control loop, live.
func TestDaemonReactsToLoadChange(t *testing.T) {
	d, clock, srv := newTestDaemon(t)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}

	status, body := do(t, http.MethodPost, srv.URL+"/apps", AddAppRequest{
		App: dynplace.WebAppSpec{
			Name: "shop", ArrivalRate: 5, DemandPerRequest: 50,
			BaseLatency: 0.02, GoalResponseTime: 0.2, MemoryMB: 1000,
		},
	})
	if status != http.StatusCreated {
		t.Fatalf("POST /apps: status %d: %s", status, body)
	}
	// Two jobs that together can absorb nearly the whole cluster, so web
	// and batch genuinely contend for CPU.
	for k := 0; k < 2; k++ {
		status, body = do(t, http.MethodPost, srv.URL+"/jobs", SubmitJobRequest{
			Job: dynplace.JobSpec{
				Name: fmt.Sprintf("crunch-%d", k), WorkMcycles: 5e6, MaxSpeedMHz: 2800,
				MemoryMB: 1000, Deadline: 2400,
			},
			Relative: true,
		})
		if status != http.StatusCreated {
			t.Fatalf("POST /jobs: status %d: %s", status, body)
		}
	}

	// Two cycles at low load (t=0 and t=60).
	clock.Advance(60)
	before := getPlacement(t, srv.URL)
	if before.Cycle < 2 {
		t.Fatalf("cycle = %d after Advance(60), want >= 2", before.Cycle)
	}
	if len(before.Web) != 1 || before.Web[0].Name != "shop" {
		t.Fatalf("web placement = %+v, want app shop", before.Web)
	}
	if len(before.Jobs) != 2 {
		t.Fatalf("job placement = %+v, want both crunch jobs", before.Jobs)
	}
	if jobSpeed(before) <= 0 {
		t.Fatalf("aggregate job speed = %v at low web load, want > 0", jobSpeed(before))
	}

	// The live sensor reports a demand surge: λ 5 → 40 req/s.
	status, body = do(t, http.MethodPost, srv.URL+"/apps/shop/load", SetLoadRequest{ArrivalRate: 40})
	if status != http.StatusOK {
		t.Fatalf("POST /apps/shop/load: status %d: %s", status, body)
	}

	// At least two more cycles under high load (t=120, t=180).
	clock.Advance(120)
	after := getPlacement(t, srv.URL)
	if after.Cycle < before.Cycle+2 {
		t.Fatalf("cycle advanced %d -> %d, want >= 2 more cycles", before.Cycle, after.Cycle)
	}

	// The controller must have shifted CPU toward the web app. The surge
	// raises the app's minimum useful allocation from ~528 to ~2278 MHz.
	if gain := after.Web[0].AllocMHz - before.Web[0].AllocMHz; gain < 500 {
		t.Errorf("web allocation went %v -> %v MHz (gain %v), want a substantial increase",
			before.Web[0].AllocMHz, after.Web[0].AllocMHz, gain)
	}
	if after.Web[0].ArrivalRate != 40 {
		t.Errorf("snapshot arrival rate = %v, want 40", after.Web[0].ArrivalRate)
	}
	if squeeze := jobSpeed(before) - jobSpeed(after); squeeze < 500 {
		t.Errorf("aggregate job speed went %v -> %v MHz, want it squeezed by the web surge",
			jobSpeed(before), jobSpeed(after))
	}

	// Router weights must reflect the new placement.
	var alloc float64
	for _, in := range after.Web[0].Instances {
		alloc += in.PowerMHz
	}
	if alloc <= 0 {
		t.Errorf("router dispatch weights sum to %v, want > 0", alloc)
	}

	// The metrics history retains the whole trajectory.
	status, body = do(t, http.MethodGet, srv.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d: %s", status, body)
	}
	var mv MetricsView
	if err := json.Unmarshal(body, &mv); err != nil {
		t.Fatal(err)
	}
	if int64(len(mv.History)) != after.Cycle {
		t.Errorf("history has %d snapshots, want %d", len(mv.History), after.Cycle)
	}
	if _, ok := mv.Router["shop"]; !ok {
		t.Errorf("router stats missing app shop: %v", mv.Router)
	}
}

// TestDaemonRoutesTraffic drives concurrent requests through the HTTP
// routing endpoint while cycles run, checking dispatch accounting.
func TestDaemonRoutesTraffic(t *testing.T) {
	d, clock, srv := newTestDaemon(t)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.AddWebApp(dynplace.WebAppSpec{
		Name: "api", ArrivalRate: 10, DemandPerRequest: 60,
		BaseLatency: 0.01, GoalResponseTime: 0.3, MemoryMB: 800,
	}, false); err != nil {
		t.Fatal(err)
	}
	clock.Advance(60) // place the app so the router has weights

	const workers, perWorker = 4, 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	routed := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				status, body := do(t, http.MethodPost, srv.URL+"/route/api", nil)
				if status != http.StatusOK && status != http.StatusAccepted {
					t.Errorf("POST /route/api: status %d: %s", status, body)
					return
				}
				if status == http.StatusOK {
					var rr RouteResponse
					if err := json.Unmarshal(body, &rr); err != nil || rr.Node == "" {
						t.Errorf("bad route response %s: %v", body, err)
						return
					}
					mu.Lock()
					routed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	stats, ok := d.Router().StatsFor("api")
	if !ok {
		t.Fatal("router lost the app")
	}
	if stats.Dispatched != routed {
		t.Errorf("router dispatched %d, handlers saw %d", stats.Dispatched, routed)
	}
	if status, _ := do(t, http.MethodPost, srv.URL+"/route/ghost", nil); status != http.StatusNotFound {
		t.Errorf("routing to unknown app: status %d, want 404", status)
	}
}

// TestDaemonAPIValidation exercises the error paths of the API surface.
func TestDaemonAPIValidation(t *testing.T) {
	d, _, srv := newTestDaemon(t)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}

	// Invalid spec: zero goal.
	status, _ := do(t, http.MethodPost, srv.URL+"/apps", AddAppRequest{
		App: dynplace.WebAppSpec{Name: "bad", ArrivalRate: 1},
	})
	if status != http.StatusBadRequest {
		t.Errorf("invalid app: status %d, want 400", status)
	}

	ok := dynplace.WebAppSpec{
		Name: "dup", ArrivalRate: 2, DemandPerRequest: 40,
		GoalResponseTime: 0.5, MemoryMB: 500,
	}
	if status, _ = do(t, http.MethodPost, srv.URL+"/apps", AddAppRequest{App: ok}); status != http.StatusCreated {
		t.Fatalf("valid app: status %d, want 201", status)
	}
	if status, _ = do(t, http.MethodPost, srv.URL+"/apps", AddAppRequest{App: ok}); status != http.StatusBadRequest {
		t.Errorf("duplicate app: status %d, want 400", status)
	}

	// Before the first cycle places the app, requests queue under
	// overload protection rather than bouncing as unknown.
	if status, body := do(t, http.MethodPost, srv.URL+"/route/dup", nil); status != http.StatusAccepted {
		t.Errorf("route before first placement: status %d (%s), want 202", status, body)
	}

	// Unknown app operations.
	if status, _ = do(t, http.MethodDelete, srv.URL+"/apps/ghost", nil); status != http.StatusNotFound {
		t.Errorf("delete unknown app: status %d, want 404", status)
	}
	if status, _ = do(t, http.MethodPost, srv.URL+"/apps/ghost/load", SetLoadRequest{ArrivalRate: 5}); status != http.StatusNotFound {
		t.Errorf("load for unknown app: status %d, want 404", status)
	}

	// Duplicate job names are rejected, even after completion.
	job := dynplace.JobSpec{Name: "j", WorkMcycles: 1000, MaxSpeedMHz: 1000, MemoryMB: 100, Deadline: 600}
	if status, _ = do(t, http.MethodPost, srv.URL+"/jobs", SubmitJobRequest{Job: job, Relative: true}); status != http.StatusCreated {
		t.Errorf("valid job: status %d, want 201", status)
	}
	if status, _ = do(t, http.MethodPost, srv.URL+"/jobs", SubmitJobRequest{Job: job, Relative: true}); status != http.StatusBadRequest {
		t.Errorf("duplicate job: status %d, want 400", status)
	}

	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Removing the app withdraws its routing entry.
	if status, _ = do(t, http.MethodDelete, srv.URL+"/apps/dup", nil); status != http.StatusOK {
		t.Errorf("delete app: status %d, want 200", status)
	}
	var names struct {
		Apps []string `json:"apps"`
	}
	_, body := do(t, http.MethodGet, srv.URL+"/apps", nil)
	if err := json.Unmarshal(body, &names); err != nil {
		t.Fatal(err)
	}
	if len(names.Apps) != 0 {
		t.Errorf("apps after delete = %v, want none", names.Apps)
	}
}

// TestDaemonJobLifecycle runs a job to completion under virtual time and
// checks the outcome reported by GET /jobs and /healthz.
func TestDaemonJobLifecycle(t *testing.T) {
	d, clock, srv := newTestDaemon(t)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	// 600k megacycles at up to 2500 MHz: ~240 s of work, deadline 600 s.
	if err := d.SubmitJob(dynplace.JobSpec{
		Name: "etl", WorkMcycles: 6e5, MaxSpeedMHz: 2500, MemoryMB: 500, Deadline: 600,
	}, true); err != nil {
		t.Fatal(err)
	}
	clock.Advance(600)

	status, body := do(t, http.MethodGet, srv.URL+"/jobs", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /jobs: status %d: %s", status, body)
	}
	var out struct {
		Jobs []dynplace.JobResult `json:"jobs"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 1 {
		t.Fatalf("jobs = %+v, want 1", out.Jobs)
	}
	r := out.Jobs[0]
	if !r.Completed || !r.MetGoal {
		t.Errorf("job result = %+v, want completed on time", r)
	}

	var hv HealthView
	_, body = do(t, http.MethodGet, srv.URL+"/healthz", nil)
	if err := json.Unmarshal(body, &hv); err != nil {
		t.Fatal(err)
	}
	if hv.Status != "ok" || hv.LiveJobs != 0 {
		t.Errorf("health = %+v, want ok with no live jobs", hv)
	}
	if hv.Now != 600 {
		t.Errorf("health now = %v, want 600", hv.Now)
	}
}

// TestDaemonStopHaltsCycles checks that Stop cancels the pending tick.
func TestDaemonStopHaltsCycles(t *testing.T) {
	d, clock, _ := newTestDaemon(t)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(60)
	cyclesAtStop := d.Placement().Cycle
	if cyclesAtStop == 0 {
		t.Fatal("no cycles ran before Stop")
	}
	d.Stop()
	clock.Advance(600)
	if got := d.Placement().Cycle; got != cyclesAtStop {
		t.Errorf("cycles advanced to %d after Stop, want frozen at %d", got, cyclesAtStop)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	// Exactly one tick chain after restart: the immediate tick plus one
	// per elapsed cycle, never double-frequency.
	clock.Advance(60)
	if got := d.Placement().Cycle; got != cyclesAtStop+2 {
		t.Errorf("cycles = %d after restart+Advance(60), want %d", got, cyclesAtStop+2)
	}
}

// TestDaemonDrainsQueueWhenCapacityReturns parks requests in the
// overload-protection queue while an app is unplaceable, then frees
// capacity and checks the queue is drained on the next cycle.
func TestDaemonDrainsQueueWhenCapacityReturns(t *testing.T) {
	cl, err := cluster.Uniform(1, 3000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	clock := NewSimClock()
	d, err := New(Config{
		Cluster: cl, CycleSeconds: 60, Costs: cluster.FreeCostModel(), Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	defer d.Stop()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}

	// Two 2500 MB apps on one 4096 MB node: only one fits.
	for _, name := range []string{"a", "b"} {
		if err := d.AddWebApp(dynplace.WebAppSpec{
			Name: name, ArrivalRate: 2, DemandPerRequest: 40,
			GoalResponseTime: 0.5, MemoryMB: 2500,
		}, false); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(60)

	snap := d.Placement()
	var placed, starved string
	for _, w := range snap.Web {
		if w.AllocMHz > 0 {
			placed = w.Name
		} else {
			starved = w.Name
		}
	}
	if placed == "" || starved == "" {
		t.Fatalf("want one placed and one starved app, got %+v", snap.Web)
	}

	// Requests for the starved app park in the protection queue.
	for i := 0; i < 3; i++ {
		if status, body := do(t, http.MethodPost, srv.URL+"/route/"+starved, nil); status != http.StatusAccepted {
			t.Fatalf("route to starved app: status %d: %s", status, body)
		}
	}
	if st, _ := d.Router().StatsFor(starved); st.QueueDepth != 3 {
		t.Fatalf("queued = %d, want 3", st.QueueDepth)
	}

	// Free the node; the next cycle places the starved app and must
	// drain its queue.
	if err := d.RemoveWebApp(placed); err != nil {
		t.Fatal(err)
	}
	clock.Advance(120)
	st, _ := d.Router().StatsFor(starved)
	if st.QueueDepth != 0 {
		t.Errorf("queued = %d after capacity returned, want drained to 0", st.QueueDepth)
	}
	if status, body := do(t, http.MethodPost, srv.URL+"/route/"+starved, nil); status != http.StatusOK {
		t.Errorf("route after drain: status %d: %s", status, body)
	}
}

// TestDaemonLoadSchedulePruning checks scheduled phases apply at their
// start times and are dropped once consumed.
func TestDaemonLoadSchedulePruning(t *testing.T) {
	d, clock, _ := newTestDaemon(t)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.AddWebApp(dynplace.WebAppSpec{
		Name: "web", ArrivalRate: 2, DemandPerRequest: 40,
		GoalResponseTime: 0.5, MemoryMB: 500,
		LoadSchedule: []dynplace.LoadPhase{
			{Start: 30, ArrivalRate: 10},
			{Start: 90, ArrivalRate: 20},
		},
	}, false); err != nil {
		t.Fatal(err)
	}

	rate := func() float64 {
		snap := d.Placement()
		if len(snap.Web) != 1 {
			t.Fatalf("placement = %+v, want one app", snap.Web)
		}
		return snap.Web[0].ArrivalRate
	}
	pending := func() int {
		d.mu.Lock()
		defer d.mu.Unlock()
		return len(d.loadSchedules["web"])
	}

	clock.Advance(60) // cycles at 0, 60: first phase begun
	if got := rate(); got != 10 {
		t.Errorf("rate = %v at t=60, want 10", got)
	}
	if got := pending(); got != 1 {
		t.Errorf("pending phases = %d at t=60, want 1", got)
	}
	clock.Advance(60) // cycle at 120: second phase begun
	if got := rate(); got != 20 {
		t.Errorf("rate = %v at t=120, want 20", got)
	}
	if got := pending(); got != 0 {
		t.Errorf("pending phases = %d at t=120, want schedule consumed", got)
	}
}

// TestWallClockDaemon smoke-tests the production clock path: a real
// daemon with a tiny cycle makes progress in real time.
func TestWallClockDaemon(t *testing.T) {
	cl, err := cluster.Uniform(1, 2000, 2048)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Cluster: cl, CycleSeconds: 0.01, Costs: cluster.FreeCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	start := time.Now()
	for d.Placement().Cycle < 3 {
		if time.Since(start) > 5*time.Second {
			t.Fatal("wall-clock daemon made no progress in 5s")
		}
		time.Sleep(time.Millisecond)
	}
	if err := d.Start(); err == nil {
		t.Error("second Start succeeded, want error")
	}
}
