package store

import (
	"encoding/json"

	"dynplace"
	"dynplace/internal/cluster"
	"dynplace/internal/scheduler"
)

// SchemaVersion is the on-disk schema version stamped into every WAL
// record and snapshot. Readers refuse newer versions (a downgrade would
// silently drop fields); older versions are upgraded in place when the
// schema evolves.
const SchemaVersion = 1

// Op names one daemon mutation class in the write-ahead log. The values
// are part of the on-disk schema: never renumber or reuse them.
type Op string

// WAL operation types.
const (
	// OpAddApp registers a web application (Record.App).
	OpAddApp Op = "add-app"
	// OpRemoveApp deregisters the web application named Record.Name.
	OpRemoveApp Op = "remove-app"
	// OpSetLoad updates Record.Name's arrival rate to Record.Rate.
	OpSetLoad Op = "set-load"
	// OpSubmitJob submits a batch job (Record.Job).
	OpSubmitJob Op = "submit-job"
	// OpAddNode registers an inventory node (Record.Node). The record
	// carries the ID the live inventory assigned so replay can verify it
	// reproduces the same numbering.
	OpAddNode Op = "add-node"
	// OpDrainNode / OpFailNode / OpRemoveNode transition the inventory
	// node named Record.Name.
	OpDrainNode  Op = "drain-node"
	OpFailNode   Op = "fail-node"
	OpRemoveNode Op = "remove-node"
	// OpCycle records one applied control cycle (Record.Cycle): job
	// progress and placement deltas, completions, and the published
	// placement snapshot.
	OpCycle Op = "cycle"
)

// Record is one journaled daemon mutation. Exactly one payload field is
// set, selected by Op. Seq and V are assigned by Store.Append.
//
// Workload specs are journaled in the library's public JSON spec types
// (dynplace.WebAppSpec, dynplace.JobSpec) with all times already
// resolved to absolute virtual seconds, so the on-disk schema is the
// same one the HTTP API speaks and replay never re-interprets
// relative-time submissions.
type Record struct {
	V    int     `json:"v"`
	Seq  uint64  `json:"seq"`
	Time float64 `json:"time"`
	Op   Op      `json:"op"`

	// App is the OpAddApp payload.
	App *AppState `json:"app,omitempty"`
	// Name identifies the target of remove/set-load and node ops.
	Name string `json:"name,omitempty"`
	// Rate is the OpSetLoad payload.
	Rate float64 `json:"rate,omitempty"`
	// Job is the OpSubmitJob payload, with absolute times.
	Job *dynplace.JobSpec `json:"job,omitempty"`
	// Node is the OpAddNode payload.
	Node *cluster.InventoryNodeSnapshot `json:"node,omitempty"`
	// InventoryVersion is the post-op inventory version for the node ops
	// (OpAddNode, OpDrainNode, OpFailNode, OpRemoveNode). Replay restores
	// it alongside the op so consumers that key decisions on
	// InventoryVersion see the same numbering across a restart even when
	// the live inventory burned increments no record captured (an add
	// rolled back on journal failure bumps the version twice).
	InventoryVersion int64 `json:"inventoryVersion,omitempty"`
	// Cycle is the OpCycle payload.
	Cycle *CycleRecord `json:"cycle,omitempty"`
}

// AppState is a web application's durable state: its spec (with the
// current arrival rate and any remaining absolute-time load phases) and
// the carried placement the optimizer's change-resistance depends on.
type AppState struct {
	Spec dynplace.WebAppSpec `json:"spec"`
	// Schedule is the not-yet-applied tail of the load schedule, with
	// absolute phase times.
	Schedule []dynplace.LoadPhase `json:"schedule,omitempty"`
	// Placement is the carried web placement as inventory node IDs.
	Placement []int `json:"placement,omitempty"`
}

// JobRecord pairs a job's immutable spec with its mutable runtime state.
type JobRecord struct {
	Spec    dynplace.JobSpec   `json:"spec"`
	Runtime scheduler.JobState `json:"runtime"`
}

// NamedJobState is one live job's runtime state inside a cycle record.
type NamedJobState struct {
	Name               string `json:"name"`
	scheduler.JobState        // inlined
}

// WebCycleState is one web app's per-cycle durable delta: the arrival
// rate the cycle planned against and the placement it carried forward.
type WebCycleState struct {
	Name        string  `json:"name"`
	ArrivalRate float64 `json:"arrivalRate"`
	Nodes       []int   `json:"nodes,omitempty"`
}

// CycleRecord journals one applied control cycle: everything the cycle
// mutated that replay must reproduce. Failed cycles are journaled too
// (Err set) because even a failed cycle retires completed jobs and
// advances the cycle counter.
type CycleRecord struct {
	Cycle int64   `json:"cycle"`
	Time  float64 `json:"time"`
	Err   string  `json:"err,omitempty"`
	// Infeasible marks a cycle that failed for lack of a feasible
	// placement; replay uses it to rebuild the infeasible-cycle counter.
	Infeasible bool `json:"infeasible,omitempty"`
	// Web carries per-app rate and carried placement; Jobs the runtime
	// state of every live job after the cycle's assignments were applied.
	Web  []WebCycleState `json:"web,omitempty"`
	Jobs []NamedJobState `json:"jobs,omitempty"`
	// Completed lists jobs retired into the results ring this cycle.
	Completed []dynplace.JobResult `json:"completed,omitempty"`
	// Actions holds the lifetime action-counter totals after this cycle
	// (totals, not deltas, so replay is idempotent).
	Actions map[string]int `json:"actions,omitempty"`
	// Placement is the published placement snapshot, opaque to the
	// store (the daemon owns the type). Restoring it verbatim is what
	// makes GET /placement identical across a kill/replay round trip.
	Placement json.RawMessage `json:"placement,omitempty"`
}

// State is a full daemon snapshot: the compaction point the WAL replays
// on top of. Seq is the last WAL sequence number the snapshot covers;
// records at or below it are skipped during recovery.
type State struct {
	V   int    `json:"v"`
	Seq uint64 `json:"seq"`
	// Time is the virtual-time instant the snapshot describes; recovery
	// resumes the daemon clock from it (wall-clock downtime does not
	// pass in virtual time).
	Time float64 `json:"time"`
	// Cycles is the lifetime control-cycle count; Restarts how many
	// recoveries preceded this state; InfeasibleCycles and
	// InfeasibleStreak mirror the planner's health counters.
	Cycles           int64 `json:"cycles"`
	Restarts         int   `json:"restarts"`
	InfeasibleCycles int   `json:"infeasibleCycles,omitempty"`

	Apps []AppState  `json:"apps,omitempty"`
	Jobs []JobRecord `json:"jobs,omitempty"`
	// JobNames is every job name ever submitted (the duplicate-submission
	// guard survives restarts even after results are pruned).
	JobNames  []string                  `json:"jobNames,omitempty"`
	Completed []dynplace.JobResult      `json:"completed,omitempty"`
	Inventory cluster.InventorySnapshot `json:"inventory"`
	Actions   map[string]int            `json:"actions,omitempty"`
	// Placement is the last published placement snapshot, opaque to the
	// store.
	Placement json.RawMessage `json:"placement,omitempty"`
}
