// Package store is the daemon's durable state store: an fsync'd
// append-only write-ahead log of placement-controller mutations plus
// periodic compacting snapshots. Every record and snapshot is versioned
// and CRC-guarded; recovery replays snapshot+WAL, truncating a torn
// final record (an interrupted append) while failing loudly — with the
// byte offset — on mid-log corruption, which can only mean the file was
// damaged after it was written.
//
// On-disk layout inside the state directory:
//
//	wal.log       magic "DPWAL01\n", then framed records
//	snapshot.dat  magic "DPSNP01\n", then one framed State
//
// Each frame is [4-byte LE payload length][4-byte LE CRC-32C][payload],
// where the payload is the JSON encoding of a Record or State. A
// snapshot is written atomically (temp file, fsync, rename, directory
// fsync) and then the WAL is rotated; if the process dies between the
// two, recovery skips WAL records the snapshot already covers by
// sequence number, so the pair is crash-consistent in every
// interleaving.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"dynplace/internal/obs"
)

const (
	walMagic  = "DPWAL01\n"
	snapMagic = "DPSNP01\n"

	walName  = "wal.log"
	snapName = "snapshot.dat"

	frameHeader = 8 // 4-byte length + 4-byte CRC
	// maxFrameBytes bounds a single record; anything larger is treated
	// as corruption rather than an allocation request.
	maxFrameBytes = 1 << 28
)

// ErrCorrupt reports on-disk state that is damaged beyond the
// recoverable torn-tail case: a CRC mismatch or impossible frame inside
// the committed region of the log or snapshot. The error message carries
// the byte offset of the damage.
var ErrCorrupt = errors.New("store: corrupt state")

// ErrVersion reports a record or snapshot written by a newer schema
// version than this binary understands.
var ErrVersion = errors.New("store: unsupported schema version")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Info summarizes a store's durability state for status endpoints.
type Info struct {
	Dir string `json:"dir"`
	// Seq is the last assigned WAL sequence number.
	Seq uint64 `json:"seq"`
	// WALBytes is the current WAL file size; WALRecords the number of
	// records appended to it since the last rotation.
	WALBytes   int64 `json:"walBytes"`
	WALRecords int   `json:"walRecords"`
	// SnapshotSeq is the sequence the last snapshot covers (0 = none);
	// SnapshotBytes its file size; SnapshotTime the virtual-time instant
	// it describes.
	SnapshotSeq   uint64  `json:"snapshotSeq"`
	SnapshotBytes int64   `json:"snapshotBytes"`
	SnapshotTime  float64 `json:"snapshotTime"`
	// Failed carries the poison reason after an unrecoverable journal
	// error; empty while the store is healthy.
	Failed string `json:"failed,omitempty"`
}

// Store is one state directory holding a WAL and its compacting
// snapshot. Methods are not safe for concurrent use; the daemon
// serializes access under its own lock.
type Store struct {
	dir string
	wal *os.File
	// failed, once set, poisons the store: a journal write or fsync left
	// the WAL in a state we cannot vouch for, so every further Append and
	// WriteSnapshot is refused rather than appending after garbage and
	// making already-acknowledged history unrecoverable.
	failed error
	// failedReason mirrors failed's message for lock-free readers: the
	// daemon's health endpoint reports the poison reason without taking
	// the daemon lock, so it must not go through Info.
	failedReason atomic.Pointer[string]

	// appendHist, fsyncHist and snapHist observe write-path latencies
	// in seconds when installed via Instrument; nil instruments are
	// no-ops.
	appendHist *obs.Histogram
	fsyncHist  *obs.Histogram
	snapHist   *obs.Histogram

	seq        uint64
	walBytes   int64
	walRecords int

	snapSeq   uint64
	snapBytes int64
	snapTime  float64

	// loaded holds the parse performed by Open until Load consumes it.
	loadedState   *State
	loadedRecords []Record
	loadConsumed  bool
}

// Open opens (creating if necessary) the state directory, validates the
// snapshot and WAL, and truncates a torn WAL tail so the log ends on a
// record boundary. The parsed state is retained for Load.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir}
	// Sweep debris from a crash between writeFileAtomic's create and
	// rename: the temp file was never part of the durable state, and
	// leaving it would accumulate stale *.tmp files across crashes.
	for _, stale := range []string{walName + ".tmp", snapName + ".tmp"} {
		if err := os.Remove(filepath.Join(dir, stale)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("store: removing stale %s: %w", stale, err)
		}
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.loadWAL(); err != nil {
		return nil, err
	}
	// Position the append point: the WAL continues after the last valid
	// record, and sequence numbers continue after everything seen.
	f, err := os.OpenFile(s.walPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal = f
	return s, nil
}

func (s *Store) walPath() string  { return filepath.Join(s.dir, walName) }
func (s *Store) snapPath() string { return filepath.Join(s.dir, snapName) }

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// Info reports the store's current durability gauges.
func (s *Store) Info() Info {
	info := Info{
		Dir:           s.dir,
		Seq:           s.seq,
		WALBytes:      s.walBytes,
		WALRecords:    s.walRecords,
		SnapshotSeq:   s.snapSeq,
		SnapshotBytes: s.snapBytes,
		SnapshotTime:  s.snapTime,
	}
	if s.failed != nil {
		info.Failed = s.failed.Error()
	}
	return info
}

// loadSnapshot reads and validates snapshot.dat if present.
func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(s.snapPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, snapName)
	}
	payload, next, err := readFrame(data, len(snapMagic))
	if err != nil {
		return fmt.Errorf("%w (%s)", err, snapName)
	}
	if payload == nil || next != len(data) {
		return fmt.Errorf("%w: %s: snapshot frame incomplete or trailing bytes at offset %d",
			ErrCorrupt, snapName, next)
	}
	var st State
	if err := json.Unmarshal(payload, &st); err != nil {
		return fmt.Errorf("%w: %s: %w", ErrCorrupt, snapName, err)
	}
	if st.V > SchemaVersion {
		return fmt.Errorf("%w: snapshot v%d, this binary understands v%d", ErrVersion, st.V, SchemaVersion)
	}
	s.loadedState = &st
	s.seq = st.Seq
	s.snapSeq = st.Seq
	s.snapBytes = int64(len(data))
	s.snapTime = st.Time
	return nil
}

// loadWAL reads wal.log, creating it when absent, truncating a torn
// tail, and failing loudly on mid-log corruption.
func (s *Store) loadWAL() error {
	data, err := os.ReadFile(s.walPath())
	if errors.Is(err, os.ErrNotExist) {
		if _, err := s.createWAL(); err != nil {
			return err
		}
		s.walBytes = int64(len(walMagic))
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		// A zero-length or half-written magic can only be a crash during
		// WAL creation/rotation with nothing committed: recreate.
		if allPrefixOf(data, walMagic) {
			if _, err := s.createWAL(); err != nil {
				return err
			}
			s.walBytes = int64(len(walMagic))
			return nil
		}
		return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, walName)
	}

	off := len(walMagic)
	for off < len(data) {
		payload, next, err := readFrame(data, off)
		if err != nil {
			return fmt.Errorf("%w (%s)", err, walName)
		}
		if payload == nil {
			// Torn tail: an append was interrupted mid-write. Truncate
			// back to the last complete record — the only place an
			// fsync'd log can legitimately end mid-frame.
			if err := os.Truncate(s.walPath(), int64(off)); err != nil {
				return fmt.Errorf("store: truncating torn tail at %d: %w", off, err)
			}
			data = data[:off]
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("%w: %s: record at offset %d: %w", ErrCorrupt, walName, off, err)
		}
		if rec.V > SchemaVersion {
			return fmt.Errorf("%w: record seq %d is v%d, this binary understands v%d",
				ErrVersion, rec.Seq, rec.V, SchemaVersion)
		}
		if rec.Seq <= s.snapSeq {
			// Covered by the snapshot (the process died between snapshot
			// rename and WAL rotation): already applied, skip.
			off = next
			continue
		}
		if rec.Seq != s.seq+1 {
			return fmt.Errorf("%w: %s: record at offset %d has seq %d, want %d",
				ErrCorrupt, walName, off, rec.Seq, s.seq+1)
		}
		s.seq = rec.Seq
		s.loadedRecords = append(s.loadedRecords, rec)
		s.walRecords++
		off = next
	}
	s.walBytes = int64(len(data))
	return nil
}

// allPrefixOf reports whether data is a (possibly empty) prefix of
// magic — the signature of a crash during file creation.
func allPrefixOf(data []byte, magic string) bool {
	return len(data) < len(magic) && string(data) == magic[:len(data)]
}

// readFrame parses one frame at off. It returns (nil, off, nil) when the
// remaining bytes cannot hold a complete frame (a torn tail) and an
// ErrCorrupt when a complete frame fails its CRC.
func readFrame(data []byte, off int) (payload []byte, next int, err error) {
	if len(data)-off < frameHeader {
		return nil, off, nil
	}
	length := binary.LittleEndian.Uint32(data[off:])
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if length > maxFrameBytes {
		// An impossible length with a full header present: if the frame
		// would extend past EOF treat it as a torn header write,
		// otherwise as corruption.
		if off+frameHeader+int(length) > len(data) {
			return nil, off, nil
		}
		return nil, off, fmt.Errorf("%w: frame at offset %d claims %d bytes", ErrCorrupt, off, length)
	}
	end := off + frameHeader + int(length)
	if end > len(data) {
		return nil, off, nil
	}
	payload = data[off+frameHeader : end]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, off, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
	}
	return payload, end, nil
}

// appendFrame encodes payload as a frame.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Load returns the state recovered by Open: the last snapshot (nil when
// none was written) and the WAL records after it, in append order. It
// may be called once per Open; the parse is released afterwards.
func (s *Store) Load() (*State, []Record, error) {
	if s.loadConsumed {
		return nil, nil, errors.New("store: Load already consumed")
	}
	s.loadConsumed = true
	st, recs := s.loadedState, s.loadedRecords
	s.loadedState, s.loadedRecords = nil, nil
	return st, recs, nil
}

// usable reports whether the store can accept writes.
func (s *Store) usable() error {
	if s.failed != nil {
		return fmt.Errorf("store: unusable after journal error: %w", s.failed)
	}
	if s.wal == nil {
		return errors.New("store: closed")
	}
	return nil
}

// poison marks the store permanently failed and releases the WAL handle.
func (s *Store) poison(err error) {
	s.failed = err
	reason := err.Error()
	s.failedReason.Store(&reason)
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
}

// FailedReason returns the poison reason, or "" while the store is
// healthy. Unlike the other methods it is safe to call concurrently
// with writes — health endpoints read it without any lock.
func (s *Store) FailedReason() string {
	if r := s.failedReason.Load(); r != nil {
		return *r
	}
	return ""
}

// Instrument installs write-path latency histograms: appendH observes
// each Append call end to end, fsyncH the WAL fsync alone, and snapH
// each WriteSnapshot. Any histogram may be nil. Call before the store
// starts serving; the fields are read by the (serialized) write path.
func (s *Store) Instrument(appendH, fsyncH, snapH *obs.Histogram) {
	s.appendHist = appendH
	s.fsyncHist = fsyncH
	s.snapHist = snapH
}

// checkFrameSize refuses payloads the reader would reject as corrupt:
// maxFrameBytes must be enforced on the write path, or a
// too-large-but-valid payload turns the state directory unbootable at
// the next Open.
func checkFrameSize(kind string, n int) error {
	if n > maxFrameBytes {
		return fmt.Errorf("store: %s payload is %d bytes, over the %d-byte frame limit", kind, n, maxFrameBytes)
	}
	return nil
}

// Append assigns the record the next sequence number, frames it, writes
// it to the WAL and fsyncs before returning — once Append returns nil
// the mutation survives kill -9.
//
// A failed write is rolled back by truncating the file to the last
// known-good record boundary so the log stays appendable; if that
// truncate fails, or the fsync fails (after which the kernel may have
// dropped the dirty pages, leaving the on-disk tail unknowable), the
// store is poisoned and refuses all further writes — appending after a
// torn or half-synced frame would make every later acknowledged record
// unrecoverable.
func (s *Store) Append(rec Record) (uint64, error) {
	if err := s.usable(); err != nil {
		return 0, err
	}
	//dynplace:ignore clockhygiene WAL append latency histogram; durability and contents are unaffected
	begin := time.Now()
	defer s.appendHist.ObserveSince(begin)
	rec.V = SchemaVersion
	rec.Seq = s.seq + 1
	payload, err := json.Marshal(&rec)
	if err != nil {
		return 0, fmt.Errorf("store: marshal record: %w", err)
	}
	if err := checkFrameSize("record", len(payload)); err != nil {
		return 0, err
	}
	frame := appendFrame(nil, payload)
	if _, err := s.wal.Write(frame); err != nil {
		if terr := s.wal.Truncate(s.walBytes); terr != nil {
			s.poison(fmt.Errorf("append failed (%w), truncate to offset %d failed (%w)", err, s.walBytes, terr))
		}
		return 0, fmt.Errorf("store: append: %w", err)
	}
	//dynplace:ignore clockhygiene fsync latency histogram; telemetry only
	fsyncBegin := time.Now()
	err = s.wal.Sync()
	s.fsyncHist.ObserveSince(fsyncBegin)
	if err != nil {
		// The frame is fully written but its durability is unknowable, and
		// the caller will treat the mutation as failed — best-effort drop
		// it so a restart does not replay a record the API refused. The
		// poison stands regardless: after a failed fsync the kernel may
		// have dropped dirty pages anywhere in the file.
		_ = s.wal.Truncate(s.walBytes)
		s.poison(fmt.Errorf("fsync failed at seq %d: %w", rec.Seq, err))
		return 0, fmt.Errorf("store: fsync: %w", err)
	}
	s.seq = rec.Seq
	s.walBytes += int64(len(frame))
	s.walRecords++
	return rec.Seq, nil
}

// WriteSnapshot persists st as the new compaction point (stamping it
// with the current schema version and sequence number), then rotates
// the WAL. The snapshot lands atomically; a crash at any point leaves
// either the old snapshot+WAL or the new snapshot with a WAL whose
// covered records are skipped on recovery.
func (s *Store) WriteSnapshot(st *State) error {
	if err := s.usable(); err != nil {
		return err
	}
	//dynplace:ignore clockhygiene snapshot-write latency histogram; telemetry only
	begin := time.Now()
	defer s.snapHist.ObserveSince(begin)
	st.V = SchemaVersion
	st.Seq = s.seq
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("store: marshal snapshot: %w", err)
	}
	if err := checkFrameSize("snapshot", len(payload)); err != nil {
		return err
	}
	data := appendFrame([]byte(snapMagic), payload)
	if _, err := s.writeFileAtomic(s.snapPath(), data); err != nil {
		// Either snapshot (old or new) recovers consistently with the
		// un-rotated WAL, so a failed snapshot write never poisons.
		return err
	}
	s.snapSeq = st.Seq
	s.snapBytes = int64(len(data))
	s.snapTime = st.Time
	return s.rotateWAL()
}

// writeFileAtomic writes data to path via a temp file, fsync and rename,
// then fsyncs the directory so the rename itself is durable. The
// replaced flag reports whether the target may already have been
// swapped when an error occurred: failures before the rename provably
// leave the old file intact, failures at or after it (a rename error is
// ambiguous, a directory-fsync error follows a successful rename) do
// not — callers holding a handle on the old file must treat it as
// possibly unlinked.
func (s *Store) writeFileAtomic(path string, data []byte) (replaced bool, err error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return false, fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return false, fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return true, fmt.Errorf("store: %w", err)
	}
	return true, s.syncDir()
}

func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir: %w", err)
	}
	return nil
}

// createWAL writes a fresh WAL containing only the magic, durably. The
// replaced flag has writeFileAtomic's meaning: on error, whether the
// previous wal.log may already have been unlinked by the rename.
func (s *Store) createWAL() (replaced bool, err error) {
	return s.writeFileAtomic(s.walPath(), []byte(walMagic))
}

// rotateWAL replaces the log with a fresh one after a snapshot. If the
// fresh log cannot be reopened the store fails stop — the old handle
// now points at an unlinked inode, and appending there would
// acknowledge mutations that no longer exist on disk.
func (s *Store) rotateWAL() error {
	if replaced, err := s.createWAL(); err != nil {
		if replaced {
			// The rename may have landed (or the directory fsync after it
			// failed), leaving s.wal on an unlinked inode; poison rather
			// than risk acknowledging mutations into it.
			s.poison(fmt.Errorf("rotating WAL: %w", err))
		}
		// A pre-rename failure (e.g. ENOSPC writing the temp file) leaves
		// the old WAL intact and appendable: report it without poisoning.
		return err
	}
	old := s.wal
	f, err := os.OpenFile(s.walPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// poison closes old (still held in s.wal): subsequent Appends
		// error instead of vanishing into the unlinked inode.
		s.poison(fmt.Errorf("reopening rotated WAL: %w", err))
		return fmt.Errorf("store: reopening rotated WAL: %w", err)
	}
	s.wal = f
	s.walBytes = int64(len(walMagic))
	s.walRecords = 0
	if old != nil {
		old.Close()
	}
	return nil
}

// Close releases the WAL file handle. It does not snapshot; callers
// wanting a clean compaction point call WriteSnapshot first.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
