package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynplace"
)

func testRecord(i int) Record {
	return Record{
		Time: float64(i) * 60,
		Op:   OpSubmitJob,
		Job: &dynplace.JobSpec{
			Name:        fmt.Sprintf("job-%d", i),
			WorkMcycles: 1000,
			MaxSpeedMHz: 3000,
			MemoryMB:    512,
			Deadline:    3600,
		},
	}
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAppendLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	st, recs, err := s.Load()
	if err != nil || st != nil || len(recs) != 0 {
		t.Fatalf("fresh store: state=%v recs=%d err=%v", st, len(recs), err)
	}
	for i := 0; i < 5; i++ {
		seq, err := s.Append(testRecord(i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	s.Close()

	s2 := openStore(t, dir)
	st, recs, err = s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("unexpected snapshot: %+v", st)
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || rec.Op != OpSubmitJob || rec.Job.Name != fmt.Sprintf("job-%d", i) {
			t.Fatalf("record %d mismatch: %+v", i, rec)
		}
	}
	// Appends continue the sequence.
	seq, err := s2.Append(testRecord(5))
	if err != nil || seq != 6 {
		t.Fatalf("continued append: seq=%d err=%v", seq, err)
	}
}

func TestSnapshotCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteSnapshot(&State{Time: 180, Cycles: 3}); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot records replay on top of the snapshot.
	if _, err := s.Append(testRecord(3)); err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if info.SnapshotSeq != 3 || info.WALRecords != 1 {
		t.Fatalf("info = %+v, want snapshotSeq 3, walRecords 1", info)
	}
	s.Close()

	s2 := openStore(t, dir)
	st, recs, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Seq != 3 || st.Cycles != 3 || st.Time != 180 {
		t.Fatalf("snapshot = %+v", st)
	}
	if len(recs) != 1 || recs[0].Seq != 4 {
		t.Fatalf("tail records = %+v, want single seq 4", recs)
	}
}

// TestSnapshotWithoutRotationSkipsCoveredRecords simulates a crash
// between the snapshot rename and the WAL rotation: the old WAL still
// holds records the snapshot covers, which recovery must skip.
func TestSnapshotWithoutRotationSkipsCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Write the snapshot by hand without rotating the WAL.
	st := &State{Time: 180}
	st.V = SchemaVersion
	st.Seq = s.seq
	payload, err := jsonMarshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.writeFileAtomic(s.snapPath(), appendFrame([]byte(snapMagic), payload)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openStore(t, dir)
	got, recs, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Seq != 3 {
		t.Fatalf("snapshot = %+v", got)
	}
	if len(recs) != 0 {
		t.Fatalf("covered records replayed: %+v", recs)
	}
	if seq, err := s2.Append(testRecord(3)); err != nil || seq != 4 {
		t.Fatalf("append after covered WAL: seq=%d err=%v", seq, err)
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	for _, cut := range []int{1, 5, 9} { // inside header, inside payload
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			s := openStore(t, dir)
			for i := 0; i < 3; i++ {
				if _, err := s.Append(testRecord(i)); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()
			path := filepath.Join(dir, walName)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			intact := data // record boundaries
			// Find the start of the last record by re-walking frames.
			off := len(walMagic)
			last := off
			for off < len(intact) {
				length := binary.LittleEndian.Uint32(intact[off:])
				last = off
				off += frameHeader + int(length)
			}
			torn := intact[:last+cut]
			if err := os.WriteFile(path, torn, 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := openStore(t, dir)
			_, recs, err := s2.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 2 {
				t.Fatalf("replayed %d records after torn tail, want 2", len(recs))
			}
			// The tail was physically truncated and the log accepts new
			// appends at the right sequence.
			if seq, err := s2.Append(testRecord(9)); err != nil || seq != 3 {
				t.Fatalf("append after truncation: seq=%d err=%v", seq, err)
			}
			s2.Close()
			s3 := openStore(t, dir)
			_, recs, err = s3.Load()
			if err != nil || len(recs) != 3 {
				t.Fatalf("reload after truncate+append: recs=%d err=%v", len(recs), err)
			}
		})
	}
}

func TestMidLogCorruptionFailsLoudlyWithOffset(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record.
	off := len(walMagic)
	first := binary.LittleEndian.Uint32(data[off:])
	second := off + frameHeader + int(first)
	data[second+frameHeader+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir)
	if err == nil {
		t.Fatal("mid-log corruption not detected")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("offset %d", second)) {
		t.Fatalf("error %q does not name byte offset %d", err, second)
	}
}

func TestCorruptSnapshotFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if _, err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(&State{Time: 60}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, snapName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: err = %v, want ErrCorrupt", err)
	}
}

func TestNewerSchemaRefused(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	rec := testRecord(0)
	// Bypass Append's stamping to write a future version.
	rec.V = SchemaVersion + 1
	rec.Seq = 1
	payload, err := jsonMarshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.wal.Write(appendFrame(nil, payload)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Open(dir); !errors.Is(err, ErrVersion) {
		t.Fatalf("future record version: err = %v, want ErrVersion", err)
	}
}

// TestOpenRemovesStaleTempFiles: a crash between writeFileAtomic's
// create and rename leaves a *.tmp behind; the next Open sweeps it
// instead of letting debris accumulate across crashes.
func TestOpenRemovesStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if _, err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	stale := []string{walName + ".tmp", snapName + ".tmp"}
	for _, name := range stale {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := openStore(t, dir)
	if _, recs, err := s2.Load(); err != nil || len(recs) != 1 {
		t.Fatalf("load with stale temp files: recs=%d err=%v", len(recs), err)
	}
	for _, name := range stale {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("stale %s survived Open (err=%v)", name, err)
		}
	}
}

// TestAppendErrorPoisonsStore: when a journal write fails in a way the
// store cannot roll back, every further Append and WriteSnapshot must be
// refused — appending after a torn frame would make acknowledged history
// unrecoverable — while records acknowledged before the failure stay
// loadable from a fresh Open.
func TestAppendErrorPoisonsStore(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Sabotage the WAL handle: a read-only descriptor fails the write and
	// the fallback truncate, which must poison the store.
	s.wal.Close()
	ro, err := os.Open(s.walPath())
	if err != nil {
		t.Fatal(err)
	}
	s.wal = ro
	if _, err := s.Append(testRecord(2)); err == nil {
		t.Fatal("append over a read-only WAL handle succeeded")
	}
	if s.failed == nil {
		t.Fatal("store not poisoned after unrecoverable append error")
	}
	if _, err := s.Append(testRecord(3)); err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("append on poisoned store: err = %v, want unusable", err)
	}
	if err := s.WriteSnapshot(&State{Time: 60}); err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("snapshot on poisoned store: err = %v, want unusable", err)
	}
	if info := s.Info(); info.Failed == "" {
		t.Fatal("Info does not surface the poison reason")
	}

	// Everything acknowledged before the failure is still recoverable.
	s2 := openStore(t, dir)
	if _, recs, err := s2.Load(); err != nil || len(recs) != 2 {
		t.Fatalf("reload after poison: recs=%d err=%v", len(recs), err)
	}
}

// TestFrameSizeEnforcedAtWriteTime: a payload larger than the reader
// accepts must fail on the write path — writing it would turn a valid
// state into an unbootable directory at the next Open.
func TestFrameSizeEnforcedAtWriteTime(t *testing.T) {
	if err := checkFrameSize("record", maxFrameBytes); err != nil {
		t.Fatalf("limit-sized payload refused: %v", err)
	}
	err := checkFrameSize("record", maxFrameBytes+1)
	if err == nil || !strings.Contains(err.Error(), "frame limit") {
		t.Fatalf("oversize payload: err = %v, want frame-limit error", err)
	}
}

// jsonMarshal mirrors the store's encoding for tests that write frames
// by hand.
func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }
