package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("util")
	if s.Name() != "util" {
		t.Fatalf("Name = %q", s.Name())
	}
	s.Add(0, 1)
	s.Add(10, 2)
	s.Add(20, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if v, ok := s.At(15); !ok || v != 2 {
		t.Fatalf("At(15) = %v, %v; want 2, true", v, ok)
	}
	if v, ok := s.At(20); !ok || v != 3 {
		t.Fatalf("At(20) = %v, %v; want 3, true", v, ok)
	}
	if _, ok := s.At(-1); ok {
		t.Fatal("At before first sample should be false")
	}
	pts := s.Points()
	pts[0].V = 99
	if s.Points()[0].V != 1 {
		t.Fatal("Points did not copy")
	}
}

func TestSeriesMeanEmpty(t *testing.T) {
	if got := NewSeries("x").Mean(); got != 0 {
		t.Fatalf("empty Mean = %v", got)
	}
}

func TestDownsample(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i))
	}
	pts := s.Downsample(5)
	if len(pts) != 5 {
		t.Fatalf("Downsample len = %d, want 5", len(pts))
	}
	if pts[0].T != 0 || pts[4].T != 99 {
		t.Fatalf("Downsample endpoints = %v, %v", pts[0], pts[4])
	}
	// Fewer points than requested: unchanged.
	s2 := NewSeries("y")
	s2.Add(1, 1)
	if got := s2.Downsample(10); len(got) != 1 {
		t.Fatalf("small Downsample len = %d", len(got))
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize([]float64{4, 1, 3, 2})
	if sum.Count != 4 || sum.Min != 1 || sum.Max != 4 {
		t.Fatalf("Summary = %+v", sum)
	}
	if sum.Mean != 2.5 {
		t.Fatalf("Mean = %v", sum.Mean)
	}
	if sum.Median != 2.5 {
		t.Fatalf("Median = %v", sum.Median)
	}
	if got := Summarize(nil); got.Count != 0 {
		t.Fatalf("empty Summarize = %+v", got)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{10, 20, 30, 40, 50}
	tests := []struct{ q, want float64 }{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.75, 40}, {0.1, 14},
	}
	for _, tt := range tests {
		if got := Quantile(v, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty Quantile = %v", got)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				raw[i] = 0
			}
		}
		sort.Float64s(raw)
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(raw, a), Quantile(raw, b)
		return qa <= qb+1e-9 && qa >= raw[0]-1e-9 && qb <= raw[len(raw)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("policy", "ontime", "changes")
	tb.AddRow("FCFS", 0.403, 0)
	tb.AddRow("EDF", 0.55, 1234)
	out := tb.String()
	if !strings.Contains(out, "FCFS") || !strings.Contains(out, "0.403") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4 (header, sep, 2 rows)", len(lines))
	}
	// All lines align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("header/separator width mismatch:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{3.14159, "3.142"},
		{math.NaN(), "NaN"},
		{-2, "-2"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.in); got != tt.want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex(nil); got != 1 {
		t.Fatalf("empty = %v, want 1", got)
	}
	if got := JainIndex([]float64{5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal values = %v, want 1", got)
	}
	// One dominant value drives the index toward 1/n.
	skewed := JainIndex([]float64{0, 0, 0, 1000})
	if skewed > 0.3 {
		t.Fatalf("skewed = %v, want near 1/4", skewed)
	}
	// More even distributions score higher.
	even := JainIndex([]float64{10, 12, 9, 11})
	uneven := JainIndex([]float64{1, 40, 2, 3})
	if even <= uneven {
		t.Fatalf("even %v should exceed uneven %v", even, uneven)
	}
	// Shift invariance: adding a constant does not change the index.
	a := JainIndex([]float64{1, 2, 3})
	b := JainIndex([]float64{101, 102, 103})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("shift changed index: %v vs %v", a, b)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("suspend", 2)
	c.Inc("migrate", 1)
	c.Inc("suspend", 3)
	if c.Get("suspend") != 5 || c.Get("migrate") != 1 || c.Get("absent") != 0 {
		t.Fatalf("counts wrong: suspend=%d migrate=%d", c.Get("suspend"), c.Get("migrate"))
	}
	if c.Total() != 6 {
		t.Fatalf("Total = %d", c.Total())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "migrate" || names[1] != "suspend" {
		t.Fatalf("Names = %v", names)
	}
}
