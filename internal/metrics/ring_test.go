package metrics

import "testing"

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing[int](4)
	if r.Len() != 0 || r.Cap() != 4 {
		t.Fatalf("empty ring: Len=%d Cap=%d", r.Len(), r.Cap())
	}
	if _, ok := r.Last(); ok {
		t.Fatal("Last on empty ring reported ok")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	got := r.Snapshot()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
	if last, ok := r.Last(); !ok || last != 3 {
		t.Fatalf("Last = %d, %v; want 3, true", last, ok)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing[int](3)
	for i := 1; i <= 7; i++ {
		r.Push(i)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Snapshot()
	want := []int{5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
	if last, ok := r.Last(); !ok || last != 7 {
		t.Fatalf("Last = %d, %v; want 7, true", last, ok)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing[string](0)
	if r.Cap() != 1 {
		t.Fatalf("Cap = %d, want clamp to 1", r.Cap())
	}
	r.Push("a")
	r.Push("b")
	if last, _ := r.Last(); last != "b" {
		t.Fatalf("Last = %q, want b", last)
	}
	if got := r.Snapshot(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Snapshot = %v, want [b]", got)
	}
}
