// Package metrics provides the measurement primitives shared by the
// simulator and the live daemon: append-only time series sampled once
// per control cycle, named action counters, distribution summaries,
// fixed-width text tables matching the rows and series the paper's
// figures report, and a generic fixed-capacity ring buffer (Ring).
//
// The experiment runners record series and print tables from them; the
// daemon uses Counter for lifetime placement-action totals and Ring to
// retain bounded per-cycle history and completed-job results for its
// /metrics endpoint. Nothing here is safe for concurrent use on its
// own; callers (the control loop, the daemon's mutex) serialize access.
// The daemon declares that contract on its fields of these types with
// // dynplace:guardedby mu annotations, which the lockguard analyzer in
// internal/analysis enforces.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one time-series sample.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series.
type Series struct {
	name   string
	points []Point
}

// NewSeries creates a named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Add appends a sample.
func (s *Series) Add(t, v float64) { s.points = append(s.points, Point{T: t, V: v}) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Points returns a copy of the samples.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// At returns the last value at or before t, or (0, false) if none.
func (s *Series) At(t float64) (float64, bool) {
	idx := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if idx == 0 {
		return 0, false
	}
	return s.points[idx-1].V, true
}

// Mean returns the unweighted mean of all samples (0 for empty).
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.points {
		sum += p.V
	}
	return sum / float64(len(s.points))
}

// Downsample returns at most n points, evenly spaced over the series,
// always keeping the first and last — for compact figure printouts.
func (s *Series) Downsample(n int) []Point {
	if n <= 0 || len(s.points) <= n {
		return s.Points()
	}
	out := make([]Point, 0, n)
	step := float64(len(s.points)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, s.points[int(math.Round(float64(i)*step))])
	}
	return out
}

// Summary describes a sample distribution.
type Summary struct {
	Count                int
	Min, Max, Mean       float64
	P25, Median, P75     float64
	P10, P90, StdDev     float64
	SumOfSquaredResidual float64
}

// Summarize computes distribution statistics. An empty input returns the
// zero Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	v := make([]float64, len(values))
	copy(v, values)
	sort.Float64s(v)
	var sum float64
	for _, x := range v {
		sum += x
	}
	mean := sum / float64(len(v))
	var ss float64
	for _, x := range v {
		d := x - mean
		ss += d * d
	}
	return Summary{
		Count:                len(v),
		Min:                  v[0],
		Max:                  v[len(v)-1],
		Mean:                 mean,
		P10:                  Quantile(v, 0.10),
		P25:                  Quantile(v, 0.25),
		Median:               Quantile(v, 0.50),
		P75:                  Quantile(v, 0.75),
		P90:                  Quantile(v, 0.90),
		StdDev:               math.Sqrt(ss / float64(len(v))),
		SumOfSquaredResidual: ss,
	}
}

// Quantile returns the q-quantile (0..1) of sorted values using linear
// interpolation. The input must be sorted ascending.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	f := pos - float64(lo)
	return sorted[lo] + f*(sorted[hi]-sorted[lo])
}

// Table renders fixed-width text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are stringified with %v and floats get
// compact formatting.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case float64:
			row[i] = FormatFloat(x)
		case float32:
			row[i] = FormatFloat(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: integers without decimals,
// others with up to 3 significant decimals.
func FormatFloat(x float64) string {
	if math.IsNaN(x) {
		return "NaN"
	}
	if x == math.Trunc(x) && math.Abs(x) < 1e12 {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.3f", x)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// JainIndex returns Jain's fairness index of the values shifted into the
// positive range: (Σx)²/(n·Σx²) after x ← x − min + 1. It is 1.0 when
// all values are equal and approaches 1/n as one value dominates — a
// scalar summary of how evenly a policy spreads goal satisfaction.
func JainIndex(values []float64) float64 {
	if len(values) == 0 {
		return 1
	}
	min := values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
	}
	var sum, sumSq float64
	for _, v := range values {
		x := v - min + 1
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(values)) * sumSq)
}

// Counter accumulates named integer counts deterministically. It is
// not safe for concurrent use; the caller serializes writers against
// readers (the daemon increments and reads only under its control-loop
// mutex, including the /metrics/prom collect callbacks — its fields of
// this type carry // dynplace:guardedby mu annotations checked by the
// lockguard analyzer). Hot paths that cannot afford a lock want
// obs.Counter instead.
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int)} }

// Inc adds n to the named count.
func (c *Counter) Inc(name string, n int) { c.counts[name] += n }

// Set overwrites the named count — used when restoring lifetime totals
// from a recovered snapshot.
func (c *Counter) Set(name string, n int) { c.counts[name] = n }

// Get returns the named count.
func (c *Counter) Get(name string) int { return c.counts[name] }

// Total sums all counts.
func (c *Counter) Total() int {
	var t int
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Names returns the count names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for k := range c.counts {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
