package metrics

// Ring is a fixed-capacity ring buffer holding the most recent values
// pushed into it. The live daemon uses it as its per-cycle snapshot
// store: observations accumulate forever, memory stays bounded, and the
// HTTP API serves the retained window. The zero value is not usable;
// construct with NewRing.
//
// Ring is not safe for concurrent use; the caller serializes Push
// against Snapshot/Last (the daemon does both under its control-loop
// mutex — GET /metrics copies the window inside that lock, and the
// daemon's Ring fields carry // dynplace:guardedby mu annotations
// checked by the lockguard analyzer). Callers
// that need lock-free observation on a hot path want internal/obs
// instead.
type Ring[T any] struct {
	buf   []T
	start int
	n     int
}

// NewRing returns a ring retaining up to capacity values (minimum 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends v, evicting the oldest value when full.
func (r *Ring[T]) Push(v T) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % len(r.buf)
}

// Len returns the number of retained values.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the retention capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Last returns the most recently pushed value.
func (r *Ring[T]) Last() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	return r.buf[(r.start+r.n-1)%len(r.buf)], true
}

// Snapshot returns the retained values oldest-first as a fresh slice.
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}
