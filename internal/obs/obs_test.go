package obs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %v", g.Value())
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram count = %d", s.Count)
	}
	var ct *CycleTrace
	ct.Span("x")()
	ct.AddSpan("y", 0, 0)
	var tr *Tracer
	if got := tr.Begin(1, 0); got != nil {
		t.Fatalf("nil tracer Begin = %v", got)
	}
	tr.Finish(nil, "")
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", s.Count)
	}
	want := []uint64{2, 1, 1, 1} // le inclusive: 0.01 holds 0.005 and 0.01
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if math.Abs(s.Sum-5.565) > 1e-9 {
		t.Fatalf("sum = %v, want 5.565", s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1e-6, 10, 6))
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	if math.Abs(s.Sum-float64(goroutines*per)*1e-5) > 1e-6 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", "k", "v1")
	b := r.Counter("x_total", "help", "k", "v1")
	if a != b {
		t.Fatal("same series returned distinct counters")
	}
	c := r.Counter("x_total", "help", "k", "v2")
	if a == c {
		t.Fatal("distinct label values share a counter")
	}
	h1 := r.Histogram("h", "help", []float64{1, 2})
	h2 := r.Histogram("h", "help", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("same histogram series returned distinct instruments")
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok_total", "help")
	mustPanic("kind conflict", func() { r.Gauge("ok_total", "help") })
	mustPanic("bad name", func() { r.Counter("0bad", "help") })
	mustPanic("bad label", func() { r.Counter("y_total", "help", "0bad", "v") })
	mustPanic("odd labels", func() { r.Counter("z_total", "help", "k") })
	mustPanic("label key mismatch", func() { r.Counter("ok_total", "help", "k", "v") })
}

// TestExpositionGolden pins the encoder's exact output for a fixed
// registry and validates it with the promlint-style parser — the
// "make check" promlint gate.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_requests_total", "Requests by result.", "result", "ok").Add(12)
	r.Counter("demo_requests_total", "Requests by result.", "result", "error").Add(3)
	r.Gauge("demo_temperature_celsius", "Current temperature.").Set(21.5)
	r.GaugeFunc("demo_threads", "Active threads.", func() float64 { return 7 })
	h := r.Histogram("demo_latency_seconds", "Request latency.", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 2} {
		h.Observe(v)
	}
	r.GaugeSampler("demo_queue_depth", "Queue depth by app.", func() []Sample {
		return []Sample{
			{Labels: []string{"app", "alpha"}, Value: 4},
			{Labels: []string{"app", `we"ird\name`}, Value: 1},
		}
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	exp, err := ParseExposition(got)
	if err != nil {
		t.Fatalf("golden exposition does not lint: %v", err)
	}
	if v, ok := exp.Value("demo_requests_total", "result", "ok"); !ok || v != 12 {
		t.Fatalf("demo_requests_total{result=ok} = %v, %v", v, ok)
	}
	if v, ok := exp.Value("demo_latency_seconds_count"); !ok || v != 5 {
		t.Fatalf("demo_latency_seconds_count = %v, %v", v, ok)
	}
	if v, ok := exp.Value("demo_latency_seconds_bucket", "le", "0.01"); !ok || v != 3 {
		t.Fatalf("bucket le=0.01 = %v, %v (cumulative)", v, ok)
	}
	if v, ok := exp.Value("demo_queue_depth", "app", `we"ird\name`); !ok || v != 1 {
		t.Fatalf("escaped label round-trip = %v, %v", v, ok)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "x 1\n",
		"duplicate series":    "# HELP x h\n# TYPE x counter\nx 1\nx 2\n",
		"negative counter":    "# HELP x h\n# TYPE x counter\nx -1\n",
		"bad metric name":     "# HELP 0x h\n# TYPE 0x counter\n0x 1\n",
		"unknown type":        "# HELP x h\n# TYPE x widget\nx 1\n",
		"unterminated labels": "# HELP x h\n# TYPE x gauge\nx{a=\"b\n",
		"non-cumulative histogram": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing +Inf": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(text); err == nil {
			t.Errorf("%s: parse accepted invalid exposition", name)
		}
	}
}

func TestParseExpositionValidInput(t *testing.T) {
	text := "# HELP up whether the target is up\n# TYPE up gauge\nup 1\n" +
		"# TYPE http_reqs counter\nhttp_reqs{code=\"200\",method=\"get\"} 1027\n"
	exp, err := ParseExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("http_reqs", "code", "200", "method", "get"); !ok || v != 1027 {
		t.Fatalf("http_reqs = %v, %v", v, ok)
	}
}

func TestTracer(t *testing.T) {
	tr := NewTracer(2)
	for cycle := int64(1); cycle <= 3; cycle++ {
		ct := tr.Begin(cycle, float64(cycle)*10)
		done := ct.Span("solve")
		done()
		ct.AddSpan("zone_solve", 0, 3*time.Millisecond)
		view := tr.Finish(ct, "")
		if view.Cycle != cycle || len(view.Spans) != 2 {
			t.Fatalf("view = %+v", view)
		}
	}
	if _, ok := tr.Cycle(1); ok {
		t.Fatal("cycle 1 should have been evicted from a capacity-2 ring")
	}
	v, ok := tr.Cycle(3)
	if !ok || v.Time != 30 {
		t.Fatalf("cycle 3 = %+v, %v", v, ok)
	}
	recent := tr.Recent()
	if len(recent) != 2 || recent[0].Cycle != 2 || recent[1].Cycle != 3 {
		t.Fatalf("recent = %+v", recent)
	}
	for _, s := range v.Spans {
		if s.Name == "zone_solve" && s.DurationMicros != 3000 {
			t.Fatalf("zone_solve duration = %d µs, want 3000", s.DurationMicros)
		}
	}
}

// TestTracerRingWraparound drives the trace ring through several full
// wraps: Recent must always return exactly the last `capacity` cycles
// oldest-first, Cycle must miss everything evicted and hit everything
// retained, and a recorded error must survive the wrap with its cycle.
func TestTracerRingWraparound(t *testing.T) {
	const capacity, cycles = 4, 11
	tr := NewTracer(capacity)
	for cycle := int64(1); cycle <= cycles; cycle++ {
		ct := tr.Begin(cycle, float64(cycle))
		ct.Span("solve")()
		errMsg := ""
		if cycle == 9 {
			errMsg = "solver exploded"
		}
		tr.Finish(ct, errMsg)

		recent := tr.Recent()
		want := int(cycle)
		if want > capacity {
			want = capacity
		}
		if len(recent) != want {
			t.Fatalf("after cycle %d: len(Recent) = %d, want %d", cycle, len(recent), want)
		}
		for i, v := range recent {
			if exp := cycle - int64(len(recent)) + 1 + int64(i); v.Cycle != exp {
				t.Fatalf("after cycle %d: Recent[%d].Cycle = %d, want %d",
					cycle, i, v.Cycle, exp)
			}
		}
	}
	for cycle := int64(1); cycle <= cycles-capacity; cycle++ {
		if _, ok := tr.Cycle(cycle); ok {
			t.Fatalf("cycle %d survived %d wraps of a capacity-%d ring",
				cycle, cycles/capacity, capacity)
		}
	}
	for cycle := int64(cycles - capacity + 1); cycle <= cycles; cycle++ {
		v, ok := tr.Cycle(cycle)
		if !ok || v.Cycle != cycle || v.Time != float64(cycle) {
			t.Fatalf("retained cycle %d = %+v, %v", cycle, v, ok)
		}
	}
	if v, ok := tr.Cycle(9); !ok || v.Err != "solver exploded" {
		t.Fatalf("cycle 9 error lost across the wrap: %+v, %v", v, ok)
	}
}

// BenchmarkObsHotPath pins the uncontended cost of the instruments on
// the router's dispatch path: a counter increment plus a histogram
// observation should stay in the tens of nanoseconds.
func BenchmarkObsHotPath(b *testing.B) {
	var c Counter
	h := NewHistogram(ExpBuckets(1e-7, 4, 12))
	b.Run("counter-inc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(1e-6)
		}
	})
	b.Run("counter-inc-parallel", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("histogram-observe-parallel", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.Observe(1e-6)
			}
		})
	})
}
