// Package obs is the daemon's observability core: dependency-free
// atomic counters and gauges, fixed-bucket latency histograms with a
// striped (per-CPU-style) hot path cheap enough for the router's
// dispatch loop, a registry that renders everything in the Prometheus
// text exposition format (text/plain; version=0.0.4), and a cycle
// tracer that records named spans for each control cycle into a
// bounded ring.
//
// Two design rules keep the package safe to thread through every
// layer:
//
//   - Instruments are nil-safe. Calling Inc, Add, Set or Observe on a
//     nil *Counter, *Gauge or *Histogram is a no-op, so instrumented
//     code never branches on "is observability enabled" — it simply
//     holds possibly-nil instrument pointers.
//
//   - Registration and collection take locks; observation does not.
//     Counter, Gauge and Histogram mutate only atomics, so the hot
//     path never contends with a scrape, and callers may observe while
//     holding their own locks without ordering obligations against the
//     registry (the encoder snapshots instrument pointers under the
//     registry lock and reads their atomics after releasing it).
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing cumulative count. The zero
// value is ready to use; a nil Counter ignores all writes.
//
// dynplace:nilsafe
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. Negative deltas are a programming error for a counter;
// n is unsigned to make that unrepresentable.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that may go up and down. The zero value is
// ready to use; a nil Gauge ignores all writes.
//
// dynplace:nilsafe
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the current value (CAS loop; safe for concurrent
// adders).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
