package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one series line from an exposition: the metric name
// (including any _bucket/_sum/_count suffix), its labels in order of
// appearance, and the parsed value.
type ParsedSample struct {
	Name   string
	Labels [][2]string
	Value  float64
}

// Label returns the value of the named label and whether it was
// present.
func (s ParsedSample) Label(key string) (string, bool) {
	for _, kv := range s.Labels {
		if kv[0] == key {
			return kv[1], true
		}
	}
	return "", false
}

// SeriesKey identifies the sample uniquely: name plus sorted labels.
func (s ParsedSample) SeriesKey() string {
	lbl := make([]string, 0, len(s.Labels))
	for _, kv := range s.Labels {
		lbl = append(lbl, kv[0]+"="+kv[1])
	}
	sort.Strings(lbl)
	return s.Name + "{" + strings.Join(lbl, ",") + "}"
}

// ParsedFamily is one metric family from an exposition: metadata plus
// every sample line that belongs to it (for histograms, the _bucket,
// _sum and _count series).
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// Exposition is a parsed and validated scrape.
type Exposition struct {
	Families map[string]*ParsedFamily
	Order    []string
}

// Value returns the value of the series with the given name and
// alternating label key/value pairs, and whether it exists.
func (e *Exposition) Value(name string, labels ...string) (float64, bool) {
	f, ok := e.Families[name]
	if !ok {
		f, ok = e.Families[baseName(name)]
	}
	if !ok {
		return 0, false
	}
	_, want := splitLabels(labels)
	keys := labels
	for _, s := range f.Samples {
		if s.Name != name || len(s.Labels) != len(want) {
			continue
		}
		match := true
		for i := 0; i < len(keys); i += 2 {
			got, ok := s.Label(keys[i])
			if !ok || got != keys[i+1] {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// baseName strips a histogram sample suffix so _bucket/_sum/_count
// lines attach to their family.
func baseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// ParseExposition parses Prometheus text exposition (version 0.0.4)
// and validates it promlint-style: well-formed HELP/TYPE lines
// preceding their samples, legal metric and label names, parseable
// values, no duplicate series, counters non-negative, and histograms
// with cumulative non-decreasing buckets ending in a +Inf bucket that
// matches _count. It returns the parsed families on success.
func ParseExposition(text string) (*Exposition, error) {
	exp := &Exposition{Families: make(map[string]*ParsedFamily)}
	seen := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseMetaLine(exp, line, lineNo); err != nil {
				return nil, err
			}
			continue
		}
		s, err := parseSampleLine(line, lineNo)
		if err != nil {
			return nil, err
		}
		key := s.SeriesKey()
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		// A sample belongs to the family of its exact name if one is
		// declared; otherwise a _bucket/_sum/_count suffix attaches it
		// to its histogram (or summary) family.
		f, ok := exp.Families[s.Name]
		if !ok {
			base := baseName(s.Name)
			f, ok = exp.Families[base]
			if ok && f.Type != "histogram" && f.Type != "summary" {
				ok = false
			}
		}
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE line", lineNo, s.Name)
		}
		if f.Type == "counter" && s.Value < 0 {
			return nil, fmt.Errorf("line %d: counter %s has negative value %v", lineNo, s.Name, s.Value)
		}
		f.Samples = append(f.Samples, s)
	}
	for _, name := range exp.Order {
		f := exp.Families[name]
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return exp, nil
}

func parseMetaLine(exp *Exposition, line string, lineNo int) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("line %d: HELP without metric name", lineNo)
		}
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		if _, ok := exp.Families[name]; ok {
			return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		exp.Families[name] = &ParsedFamily{Name: name, Help: help}
		exp.Order = append(exp.Order, name)
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
		}
		name, typ := fields[2], fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
		}
		f, ok := exp.Families[name]
		if !ok {
			f = &ParsedFamily{Name: name}
			exp.Families[name] = f
			exp.Order = append(exp.Order, name)
		}
		if f.Type != "" {
			return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
		}
		f.Type = typ
	}
	return nil
}

// parseSampleLine parses `name{k="v",...} value` (optional timestamp
// rejected — we never emit one).
func parseSampleLine(line string, lineNo int) (ParsedSample, error) {
	var s ParsedSample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", lineNo, s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest, lineNo)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("line %d: malformed sample line %q", lineNo, line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("line %d: bad value %q: %w", lineNo, rest, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `{k="v",...}` at the start of s and returns the
// index just past the closing brace.
func parseLabels(s string, lineNo int) (int, [][2]string, error) {
	var labels [][2]string
	seen := make(map[string]bool)
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("line %d: unterminated label set", lineNo)
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		key := s[i:j]
		if !validLabelName(key) && key != "le" && key != "quantile" {
			return 0, nil, fmt.Errorf("line %d: invalid label name %q", lineNo, key)
		}
		if seen[key] {
			return 0, nil, fmt.Errorf("line %d: duplicate label %q", lineNo, key)
		}
		seen[key] = true
		if j+1 >= len(s) || s[j+1] != '"' {
			return 0, nil, fmt.Errorf("line %d: label %q missing quoted value", lineNo, key)
		}
		j += 2
		var val strings.Builder
		for {
			if j >= len(s) {
				return 0, nil, fmt.Errorf("line %d: unterminated label value for %q", lineNo, key)
			}
			c := s[j]
			if c == '"' {
				j++
				break
			}
			if c == '\\' {
				if j+1 >= len(s) {
					return 0, nil, fmt.Errorf("line %d: dangling escape in label %q", lineNo, key)
				}
				switch s[j+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("line %d: bad escape \\%c in label %q", lineNo, s[j+1], key)
				}
				j += 2
				continue
			}
			val.WriteByte(c)
			j++
		}
		labels = append(labels, [2]string{key, val.String()})
		if j < len(s) && s[j] == ',' {
			j++
		}
		i = j
	}
}

// validateHistogram checks each label-subgroup of a histogram family:
// buckets cumulative and non-decreasing, a +Inf bucket present, and
// _count equal to the +Inf bucket.
func validateHistogram(f *ParsedFamily) error {
	type group struct {
		lastLe  float64
		lastCum float64
		infCum  float64
		hasInf  bool
		count   float64
		hasCnt  bool
	}
	groups := make(map[string]*group)
	keyOf := func(s ParsedSample) string {
		lbl := make([]string, 0, len(s.Labels))
		for _, kv := range s.Labels {
			if kv[0] == "le" {
				continue
			}
			lbl = append(lbl, kv[0]+"="+kv[1])
		}
		sort.Strings(lbl)
		return strings.Join(lbl, ",")
	}
	get := func(k string) *group {
		g, ok := groups[k]
		if !ok {
			g = &group{lastLe: math.Inf(-1)}
			groups[k] = g
		}
		return g
	}
	for _, s := range f.Samples {
		g := get(keyOf(s))
		switch {
		case s.Name == f.Name+"_bucket":
			leStr, ok := s.Label("le")
			if !ok {
				return fmt.Errorf("histogram %s: bucket sample without le label", f.Name)
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, leStr)
			}
			if le <= g.lastLe {
				return fmt.Errorf("histogram %s: le %q out of order", f.Name, leStr)
			}
			if s.Value < g.lastCum {
				return fmt.Errorf("histogram %s: bucket le=%q count %v below previous %v (not cumulative)", f.Name, leStr, s.Value, g.lastCum)
			}
			g.lastLe, g.lastCum = le, s.Value
			if math.IsInf(le, 1) {
				g.hasInf, g.infCum = true, s.Value
			}
		case s.Name == f.Name+"_count":
			g.count, g.hasCnt = s.Value, true
		}
	}
	for k, g := range groups {
		if !g.hasInf {
			return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", f.Name, k)
		}
		if g.hasCnt && g.count != g.infCum {
			return fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", f.Name, k, g.count, g.infCum)
		}
	}
	return nil
}
