package obs

import (
	"sync"
	"time"
)

// SpanView is one named, timed segment of a control cycle. Offsets
// and durations are microseconds of real (wall) time relative to the
// cycle's start — real even when the daemon runs on a virtual clock,
// because spans measure actual compute.
type SpanView struct {
	Name string `json:"name"`
	// StartMicros is the span's offset from the cycle start.
	StartMicros int64 `json:"startMicros"`
	// DurationMicros is the span's wall-clock length.
	DurationMicros int64 `json:"durationMicros"`
}

// TraceView is the immutable record of one traced control cycle: its
// ordinal, the virtual-time instant it planned for, its total
// wall-clock duration, the error (if the cycle failed) and every
// recorded span.
type TraceView struct {
	Cycle          int64      `json:"cycle"`
	Time           float64    `json:"time"`
	DurationMicros int64      `json:"durationMicros"`
	Err            string     `json:"err,omitempty"`
	Spans          []SpanView `json:"spans"`
}

// CycleTrace accumulates the spans of one in-flight cycle. It is
// single-writer by design — the control loop already serializes a
// cycle end to end — and every method is nil-safe so tracing can be
// threaded through call paths that may run untraced.
//
// dynplace:nilsafe
type CycleTrace struct {
	cycle int64
	vtime float64
	start time.Time
	spans []SpanView
}

// Span opens a named span now and returns the function that closes
// it; the usual shape is `defer ct.Span("solve")()` or an explicit
// close around the timed region.
func (ct *CycleTrace) Span(name string) func() {
	if ct == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		ct.spans = append(ct.spans, SpanView{
			Name:           name,
			StartMicros:    begin.Sub(ct.start).Microseconds(),
			DurationMicros: time.Since(begin).Microseconds(),
		})
	}
}

// AddSpan records a span from measurements taken elsewhere — the
// shard coordinator's concurrent zone solves are timed inside their
// goroutines and reconstructed here after the fact. start is the
// span's offset from the cycle start.
func (ct *CycleTrace) AddSpan(name string, start, dur time.Duration) {
	if ct == nil {
		return
	}
	ct.spans = append(ct.spans, SpanView{
		Name:           name,
		StartMicros:    start.Microseconds(),
		DurationMicros: dur.Microseconds(),
	})
}

// Elapsed returns the wall time since the cycle began — the offset an
// AddSpan caller needs for a region it timed externally.
func (ct *CycleTrace) Elapsed() time.Duration {
	if ct == nil {
		return 0
	}
	return time.Since(ct.start)
}

// Tracer retains the span timelines of the most recent control cycles
// in a bounded ring. Begin/Finish are called by the control loop;
// Cycle and Recent serve concurrent HTTP readers. A nil Tracer
// returns nil traces, which every CycleTrace method accepts.
//
// dynplace:nilsafe
type Tracer struct {
	mu    sync.Mutex
	buf   []TraceView
	start int
	n     int
}

// NewTracer returns a tracer retaining up to capacity cycles
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]TraceView, capacity)}
}

// Begin opens the trace for one cycle. cycle is the cycle ordinal and
// vtime the virtual-time instant being planned for. A nil tracer
// returns a nil trace, which every CycleTrace method accepts.
func (t *Tracer) Begin(cycle int64, vtime float64) *CycleTrace {
	if t == nil {
		return nil
	}
	return &CycleTrace{cycle: cycle, vtime: vtime, start: time.Now()}
}

// Finish seals the trace and pushes it into the ring, returning the
// recorded view. err is empty for a successful cycle. Finishing a nil
// trace is a no-op.
func (t *Tracer) Finish(ct *CycleTrace, err string) TraceView {
	if t == nil || ct == nil {
		return TraceView{}
	}
	view := TraceView{
		Cycle:          ct.cycle,
		Time:           ct.vtime,
		DurationMicros: time.Since(ct.start).Microseconds(),
		Err:            err,
		Spans:          ct.spans,
	}
	ct.spans = nil // the view owns the slice now
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = view
		t.n++
	} else {
		t.buf[t.start] = view
		t.start = (t.start + 1) % len(t.buf)
	}
	return view
}

// Cycle returns the retained trace for the given cycle ordinal.
func (t *Tracer) Cycle(cycle int64) (TraceView, bool) {
	if t == nil {
		return TraceView{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := t.n - 1; i >= 0; i-- {
		v := t.buf[(t.start+i)%len(t.buf)]
		if v.Cycle == cycle {
			return v, true
		}
	}
	return TraceView{}, false
}

// Recent returns the retained traces oldest-first.
func (t *Tracer) Recent() []TraceView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceView, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}
