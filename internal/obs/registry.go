package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// ContentType is the Prometheus text exposition content type the
// encoder produces.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Sample is one dynamically labeled gauge reading produced by a
// sampler callback: alternating label key/value pairs plus the value.
type Sample struct {
	Labels []string
	Value  float64
}

// kind is a family's Prometheus metric type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled series (or series group, for histograms) of a
// family. Exactly one of the value fields is set.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	counterFn   func() float64
	gaugeFn     func() float64
}

// family is one metric name: its metadata and every labeled child.
type family struct {
	name      string
	help      string
	kind      kind
	labelKeys []string

	mu       sync.Mutex
	children map[string]*child
	order    []string

	// sampler, when set, replaces children entirely: the callback is
	// invoked at collect time and may return a different label set on
	// every scrape (e.g. per-application gauges).
	sampler func() []Sample
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Registration is idempotent get-or-create: asking for
// the same name and label values returns the same instrument, so
// call sites need no "already registered" bookkeeping. Registration
// and encoding are safe for concurrent use; misuse that would emit an
// invalid exposition (bad names, label-key mismatches within a
// family, kind conflicts) panics at registration time, keeping the
// scrape path infallible.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// splitLabels validates and splits alternating key/value pairs.
func splitLabels(labels []string) (keys, values []string) {
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key/value pairs")
	}
	n := len(labels) / 2
	keys = make([]string, 0, n)
	values = make([]string, 0, n)
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		keys = append(keys, labels[i])
		values = append(values, labels[i+1])
	}
	return keys, values
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// familyFor returns the named family, creating it on first use and
// enforcing that every later registration agrees on kind, help and
// label keys.
func (r *Registry) familyFor(name, help string, k kind, labelKeys []string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:      name,
			help:      help,
			kind:      k,
			labelKeys: labelKeys,
			children:  make(map[string]*child),
		}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, k))
	}
	if !sameStrings(f.labelKeys, labelKeys) {
		panic(fmt.Sprintf("obs: metric %q label keys %v conflict with %v", name, f.labelKeys, labelKeys))
	}
	return f
}

// childKey joins label values unambiguously (values may contain any
// bytes, so a separator alone would collide).
func childKey(values []string) string {
	var b strings.Builder
	for _, v := range values {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
	return b.String()
}

// childFor returns the family's child for the label values, creating
// it with mk on first use.
func (f *family) childFor(values []string, mk func() *child) *child {
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sampler != nil {
		panic(fmt.Sprintf("obs: metric %q is sampler-backed", f.name))
	}
	c, ok := f.children[key]
	if !ok {
		c = mk()
		c.labelValues = values
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter returns the counter for name and the alternating label
// key/value pairs, registering it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	keys, values := splitLabels(labels)
	f := r.familyFor(name, help, kindCounter, keys)
	c := f.childFor(values, func() *child { return &child{counter: &Counter{}} })
	if c.counter == nil {
		panic(fmt.Sprintf("obs: metric %q series registered with a different backing", name))
	}
	return c.counter
}

// Gauge returns the gauge for name and labels, registering it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	keys, values := splitLabels(labels)
	f := r.familyFor(name, help, kindGauge, keys)
	c := f.childFor(values, func() *child { return &child{gauge: &Gauge{}} })
	if c.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q series registered with a different backing", name))
	}
	return c.gauge
}

// Histogram returns the histogram for name and labels, registering it
// with the given bucket bounds on first use (later calls reuse the
// existing buckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	keys, values := splitLabels(labels)
	f := r.familyFor(name, help, kindHistogram, keys)
	c := f.childFor(values, func() *child { return &child{hist: NewHistogram(bounds)} })
	if c.hist == nil {
		panic(fmt.Sprintf("obs: metric %q series registered with a different backing", name))
	}
	return c.hist
}

// CounterFunc registers a counter series whose value is read from fn
// at collect time. fn must be safe to call from the scrape goroutine
// and must never decrease.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	keys, values := splitLabels(labels)
	f := r.familyFor(name, help, kindCounter, keys)
	f.childFor(values, func() *child { return &child{counterFn: fn} })
}

// GaugeFunc registers a gauge series whose value is read from fn at
// collect time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	keys, values := splitLabels(labels)
	f := r.familyFor(name, help, kindGauge, keys)
	f.childFor(values, func() *child { return &child{gaugeFn: fn} })
}

// GaugeSampler registers a gauge family whose entire series set is
// produced by fn at collect time — for families whose label values
// are dynamic (per-application, per-zone on a changing topology). The
// callback owns ordering; return samples in a stable order for
// deterministic output.
func (r *Registry) GaugeSampler(name, help string, fn func() []Sample) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obs: metric %q already registered", name))
	}
	r.families[name] = &family{name: name, help: help, kind: kindGauge, sampler: fn}
	r.order = append(r.order, name)
}

// CounterSampler registers a counter family whose entire series set is
// produced by fn at collect time — the counter counterpart of
// GaugeSampler for families with dynamic label values. Each labeled
// series fn returns must be monotonically non-decreasing across calls.
func (r *Registry) CounterSampler(name, help string, fn func() []Sample) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obs: metric %q already registered", name))
	}
	r.families[name] = &family{name: name, help: help, kind: kindCounter, sampler: fn}
	r.order = append(r.order, name)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSeries writes one sample line: name, merged labels (extra is
// appended after the family keys, for le), and the value.
func writeSeries(b *strings.Builder, name string, keys, values []string, extraKey, extraVal, value string) {
	b.WriteString(name)
	if len(keys) > 0 || extraKey != "" {
		b.WriteByte('{')
		for i := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(keys[i])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraKey != "" {
			if len(keys) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(extraVal)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// WritePrometheus renders every registered family in registration
// order as Prometheus text exposition (version 0.0.4). Collect-time
// callbacks (CounterFunc, GaugeFunc, GaugeSampler) run after all
// registry and family locks are released, so they may take arbitrary
// caller locks without ordering constraints against registration.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		var kids []*child
		if f.sampler == nil {
			f.mu.Lock()
			kids = make([]*child, 0, len(f.order))
			for _, key := range f.order {
				kids = append(kids, f.children[key])
			}
			f.mu.Unlock()
		}

		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')

		if f.sampler != nil {
			for _, s := range f.sampler() {
				keys, values := splitLabels(s.Labels)
				writeSeries(&b, f.name, keys, values, "", "", formatValue(s.Value))
			}
			continue
		}
		for _, c := range kids {
			switch {
			case c.counter != nil:
				writeSeries(&b, f.name, f.labelKeys, c.labelValues, "", "", formatValue(float64(c.counter.Value())))
			case c.counterFn != nil:
				writeSeries(&b, f.name, f.labelKeys, c.labelValues, "", "", formatValue(c.counterFn()))
			case c.gauge != nil:
				writeSeries(&b, f.name, f.labelKeys, c.labelValues, "", "", formatValue(c.gauge.Value()))
			case c.gaugeFn != nil:
				writeSeries(&b, f.name, f.labelKeys, c.labelValues, "", "", formatValue(c.gaugeFn()))
			case c.hist != nil:
				snap := c.hist.Snapshot()
				var cum uint64
				for i, bound := range snap.Bounds {
					cum += snap.Counts[i]
					writeSeries(&b, f.name+"_bucket", f.labelKeys, c.labelValues,
						"le", formatValue(bound), strconv.FormatUint(cum, 10))
				}
				cum += snap.Counts[len(snap.Bounds)]
				writeSeries(&b, f.name+"_bucket", f.labelKeys, c.labelValues,
					"le", "+Inf", strconv.FormatUint(cum, 10))
				writeSeries(&b, f.name+"_sum", f.labelKeys, c.labelValues, "", "", formatValue(snap.Sum))
				writeSeries(&b, f.name+"_count", f.labelKeys, c.labelValues, "", "", strconv.FormatUint(cum, 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
