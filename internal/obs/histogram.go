package obs

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket cumulative-distribution histogram tuned
// for hot paths: observations touch only atomics in one of several
// cache-line-aligned stripes, so concurrent observers (the router's
// dispatch path, concurrent HTTP handlers) do not serialize on a lock
// or ping-pong a shared cache line. Stripe selection uses the
// runtime's per-P cheap RNG (math/rand/v2's global Uint64), which
// costs a few nanoseconds and needs no coordination.
//
// Buckets are upper bounds in the Prometheus le convention: an
// observation v lands in the first bucket whose bound is ≥ v, with an
// implicit +Inf bucket at the end. Bounds are fixed at construction.
// A nil Histogram ignores all observations.
//
// dynplace:nilsafe
type Histogram struct {
	bounds []float64
	// cells holds every stripe back to back: stride atomics per
	// stripe, of which the first len(bounds)+1 are bucket counts (the
	// last being +Inf) and the next holds the float64 bit pattern of
	// the stripe's observation sum. The stride is rounded up to a
	// whole number of 64-byte cache lines so stripes never share one.
	cells  []atomic.Uint64
	stride int
	mask   uint64
}

const cacheLineWords = 8 // 64 bytes / 8-byte atomic

// stripesForCPUs returns the stripe count: the smallest power of two
// that is at least the number of usable CPUs, capped to keep snapshot
// cost and memory bounded on very wide machines.
func stripesForCPUs() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	if n&(n-1) == 0 {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// NewHistogram returns a histogram with the given upper bounds, which
// must be finite, strictly increasing and non-empty. The implicit
// +Inf bucket is added automatically.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i, b := range own {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bounds must be finite")
		}
		if i > 0 && b <= own[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	stripes := stripesForCPUs()
	words := len(own) + 2 // bucket counts + +Inf + sum
	stride := (words + cacheLineWords - 1) / cacheLineWords * cacheLineWords
	return &Histogram{
		bounds: own,
		cells:  make([]atomic.Uint64, stripes*stride),
		stride: stride,
		mask:   uint64(stripes - 1),
	}
}

// ExpBuckets returns count exponentially spaced bounds starting at
// start and multiplying by factor, e.g. ExpBuckets(0.001, 2, 10) for
// 1ms…512ms. start must be positive and factor greater than 1.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, count ≥ 1")
	}
	out := make([]float64, count)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum); everything else lands in its le bucket, with
// values beyond the last bound counted under +Inf.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	base := int(rand.Uint64()&h.mask) * h.stride
	// Inlined SearchFloat64s: first bound ≥ v (the le convention).
	// The closure-free loop saves ~10ns on the dispatch hot path.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	h.cells[base+i].Add(1)
	sum := &h.cells[base+len(h.bounds)+1]
	for {
		old := sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// HistogramSnapshot is a point-in-time aggregate of a histogram:
// per-bucket counts (not cumulative; the final entry is the +Inf
// bucket), the observation total and the value sum.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot aggregates every stripe. Concurrent observers may land
// between bucket and sum reads, so the snapshot is consistent only in
// the eventual sense every sampled metrics system accepts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	nb := len(h.bounds) + 1
	snap := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, nb),
	}
	stripes := int(h.mask) + 1
	for s := 0; s < stripes; s++ {
		base := s * h.stride
		for i := 0; i < nb; i++ {
			snap.Counts[i] += h.cells[base+i].Load()
		}
		snap.Sum += math.Float64frombits(h.cells[base+nb].Load())
	}
	for _, c := range snap.Counts {
		snap.Count += c
	}
	return snap
}
