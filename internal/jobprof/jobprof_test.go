package jobprof

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// synthRun samples a synthetic two-stage job: stage 1 runs 100 s at
// ≈2000 MHz with 1 GB resident, stage 2 runs 200 s at ≈800 MHz with
// 3 GB. Noise perturbs the CPU readings.
func synthRun(rng *rand.Rand, noise float64) Run {
	var run Run
	for t := 0.0; t <= 300; t += 5 {
		var cpu, mem float64
		if t < 100 {
			cpu, mem = 2000, 1024
		} else {
			cpu, mem = 800, 3072
		}
		if noise > 0 {
			cpu += rng.NormFloat64() * noise
			if cpu < 0 {
				cpu = 0
			}
			mem += rng.NormFloat64() * 20
		}
		run = append(run, Observation{T: t, CPUMHz: cpu, MemoryMB: mem})
	}
	return run
}

func TestEstimateStagesCleanRun(t *testing.T) {
	var p Profiler
	stages, err := p.EstimateStages(synthRun(nil, 0))
	if err != nil {
		t.Fatalf("EstimateStages: %v", err)
	}
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(stages))
	}
	// Stage 1: ≈100 s × 2000 MHz = 200,000 Mcycles (trapezoid boundary
	// blends one sample interval).
	if math.Abs(stages[0].WorkMcycles-200000) > 10000 {
		t.Fatalf("stage 1 work = %v, want ≈200000", stages[0].WorkMcycles)
	}
	if math.Abs(stages[0].MaxSpeedMHz-2000) > 1 {
		t.Fatalf("stage 1 speed = %v, want 2000", stages[0].MaxSpeedMHz)
	}
	if math.Abs(stages[0].MemoryMB-1024) > 1 {
		t.Fatalf("stage 1 memory = %v, want 1024", stages[0].MemoryMB)
	}
	// Stage 2: ≈200 s × 800 MHz = 160,000 Mcycles.
	if math.Abs(stages[1].WorkMcycles-160000) > 10000 {
		t.Fatalf("stage 2 work = %v, want ≈160000", stages[1].WorkMcycles)
	}
	if math.Abs(stages[1].MemoryMB-3072) > 1 {
		t.Fatalf("stage 2 memory = %v, want 3072", stages[1].MemoryMB)
	}
}

func TestEstimateStagesNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var p Profiler
	stages, err := p.EstimateStages(synthRun(rng, 100))
	if err != nil {
		t.Fatalf("EstimateStages: %v", err)
	}
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2 (noise should not split stages)", len(stages))
	}
	if math.Abs(stages[0].MaxSpeedMHz-2000) > 200 {
		t.Fatalf("stage 1 speed = %v, want ≈2000", stages[0].MaxSpeedMHz)
	}
}

func TestEstimateAveragesRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	runs := make([]Run, 8)
	for i := range runs {
		runs[i] = synthRun(rng, 60)
	}
	var p Profiler
	stages, used, err := p.Estimate(runs)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if used < 6 {
		t.Fatalf("used = %d runs, want most of 8", used)
	}
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(stages))
	}
	total := stages[0].WorkMcycles + stages[1].WorkMcycles
	if math.Abs(total-360000) > 15000 {
		t.Fatalf("total work = %v, want ≈360000", total)
	}
}

func TestEstimateDiscardsOddRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	runs := []Run{synthRun(rng, 0), synthRun(rng, 0)}
	// One single-stage outlier run.
	var odd Run
	for tt := 0.0; tt <= 100; tt += 5 {
		odd = append(odd, Observation{T: tt, CPUMHz: 500, MemoryMB: 512})
	}
	runs = append(runs, odd)
	var p Profiler
	stages, used, err := p.Estimate(runs)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if used != 2 || len(stages) != 2 {
		t.Fatalf("used = %d stages = %d, want 2/2 (outlier discarded)", used, len(stages))
	}
}

func TestUnsortedSamplesAccepted(t *testing.T) {
	run := synthRun(nil, 0)
	run[0], run[len(run)-1] = run[len(run)-1], run[0] // shuffle endpoints
	var p Profiler
	if _, err := p.EstimateStages(run); err != nil {
		t.Fatalf("EstimateStages on unsorted input: %v", err)
	}
}

func TestErrors(t *testing.T) {
	var p Profiler
	if _, err := p.EstimateStages(nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("nil run: %v", err)
	}
	if _, err := p.EstimateStages(Run{{T: 0, CPUMHz: 1, MemoryMB: 1}}); !errors.Is(err, ErrNoData) {
		t.Fatalf("single sample: %v", err)
	}
	if _, err := p.EstimateStages(Run{
		{T: 0, CPUMHz: -5, MemoryMB: 1}, {T: 1, CPUMHz: 1, MemoryMB: 1},
	}); err == nil {
		t.Fatal("negative CPU accepted")
	}
	if _, _, err := p.Estimate(nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("no runs: %v", err)
	}
	// Idle run (all-zero CPU) yields no usable work.
	idle := Run{{T: 0, CPUMHz: 0, MemoryMB: 10}, {T: 10, CPUMHz: 0, MemoryMB: 10}}
	if _, err := p.EstimateStages(idle); !errors.Is(err, ErrNoData) {
		t.Fatalf("idle run: %v", err)
	}
}

func TestBuildSpec(t *testing.T) {
	var p Profiler
	stages, err := p.EstimateStages(synthRun(nil, 0))
	if err != nil {
		t.Fatalf("EstimateStages: %v", err)
	}
	spec, err := BuildSpec("profiled", stages, 100, 5000)
	if err != nil {
		t.Fatalf("BuildSpec: %v", err)
	}
	if spec.MinExecTime() < 250 || spec.MinExecTime() > 350 {
		t.Fatalf("MinExecTime = %v, want ≈300 (the recorded duration)", spec.MinExecTime())
	}
	if _, err := BuildSpec("bad", stages, 100, 50); err == nil {
		t.Fatal("deadline before submit accepted")
	}
}
