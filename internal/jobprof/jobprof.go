// Package jobprof implements the job workload profiler: it estimates a
// job's multi-stage resource usage profile (the batch.Stage sequence the
// placement controller consumes) from observations of historical runs.
//
// The paper takes job profiles as given at submission time, produced by
// a "job workload profiler ... based on historical data analysis", and
// names on-the-fly profile generation as future work. This package
// provides that component: given one or more recorded runs — time series
// of CPU and memory consumption — it segments each run into stages at
// memory-footprint change points, integrates CPU work per stage, and
// averages across runs.
package jobprof

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dynplace/internal/batch"
)

// Observation is one sample of a running job's resource consumption.
type Observation struct {
	// T is the sample time in seconds since the job started.
	T float64
	// CPUMHz is the observed CPU consumption rate.
	CPUMHz float64
	// MemoryMB is the observed resident memory.
	MemoryMB float64
}

// Run is one recorded execution, sampled over time.
type Run []Observation

// Profiler estimates job profiles from recorded runs. The zero value
// uses sensible defaults.
type Profiler struct {
	// MemoryThresholdMB is the footprint change that starts a new stage
	// (default 256 MB).
	MemoryThresholdMB float64
	// SpeedQuantile picks the per-stage maximum speed from the observed
	// CPU rates, default 0.95 (robust to sampling spikes).
	SpeedQuantile float64
}

// ErrNoData reports insufficient observations.
var ErrNoData = errors.New("jobprof: not enough observations")

func (p *Profiler) memThreshold() float64 {
	if p.MemoryThresholdMB > 0 {
		return p.MemoryThresholdMB
	}
	return 256
}

func (p *Profiler) speedQuantile() float64 {
	if p.SpeedQuantile > 0 && p.SpeedQuantile <= 1 {
		return p.SpeedQuantile
	}
	return 0.95
}

// EstimateStages segments one run into stages. Observations must carry
// nonnegative readings; they are sorted by time.
func (p *Profiler) EstimateStages(run Run) ([]batch.Stage, error) {
	if len(run) < 2 {
		return nil, fmt.Errorf("%w: have %d samples, need at least 2", ErrNoData, len(run))
	}
	obs := make(Run, len(run))
	copy(obs, run)
	sort.Slice(obs, func(i, j int) bool { return obs[i].T < obs[j].T })
	for i, o := range obs {
		if o.CPUMHz < 0 || o.MemoryMB < 0 || math.IsNaN(o.CPUMHz) || math.IsNaN(o.MemoryMB) {
			return nil, fmt.Errorf("jobprof: invalid sample %d (%+v)", i, o)
		}
	}

	// Segment at memory change points.
	type segment struct {
		start, end int // half-open [start, end) index range
	}
	var segs []segment
	segStart := 0
	baseMem := obs[0].MemoryMB
	for i := 1; i < len(obs); i++ {
		if math.Abs(obs[i].MemoryMB-baseMem) > p.memThreshold() {
			segs = append(segs, segment{start: segStart, end: i})
			segStart = i
			baseMem = obs[i].MemoryMB
		}
	}
	segs = append(segs, segment{start: segStart, end: len(obs)})

	stages := make([]batch.Stage, 0, len(segs))
	for _, sg := range segs {
		stage, ok := p.summarize(obs, sg.start, sg.end)
		if ok {
			stages = append(stages, stage)
		}
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("%w: no stage accumulated positive work", ErrNoData)
	}
	return stages, nil
}

// summarize integrates one segment into a stage.
func (p *Profiler) summarize(obs Run, start, end int) (batch.Stage, bool) {
	// Trapezoidal integration of CPU rate over time; the segment's right
	// edge extends to the first sample of the next segment when present.
	var work float64
	speeds := make([]float64, 0, end-start)
	var maxMem float64
	last := end
	if last >= len(obs) {
		last = len(obs) - 1
	}
	for i := start; i < end; i++ {
		speeds = append(speeds, obs[i].CPUMHz)
		if obs[i].MemoryMB > maxMem {
			maxMem = obs[i].MemoryMB
		}
		next := i + 1
		if next >= len(obs) {
			break
		}
		dt := obs[next].T - obs[i].T
		if dt <= 0 {
			continue
		}
		work += dt * (obs[i].CPUMHz + obs[next].CPUMHz) / 2
	}
	if work <= 0 {
		return batch.Stage{}, false
	}
	sort.Float64s(speeds)
	idx := int(float64(len(speeds)-1) * p.speedQuantile())
	maxSpeed := speeds[idx]
	if maxSpeed <= 0 {
		return batch.Stage{}, false
	}
	return batch.Stage{
		WorkMcycles: work,
		MaxSpeedMHz: maxSpeed,
		MemoryMB:    maxMem,
	}, true
}

// Estimate averages the stage profiles of several runs. Runs whose
// stage count differs from the majority are discarded; the survivors'
// stages are averaged field-wise. It returns the estimated profile and
// the number of runs used.
func (p *Profiler) Estimate(runs []Run) ([]batch.Stage, int, error) {
	if len(runs) == 0 {
		return nil, 0, ErrNoData
	}
	var profiles [][]batch.Stage
	for _, r := range runs {
		stages, err := p.EstimateStages(r)
		if err != nil {
			continue
		}
		profiles = append(profiles, stages)
	}
	if len(profiles) == 0 {
		return nil, 0, fmt.Errorf("%w: no usable runs", ErrNoData)
	}
	// Majority stage count.
	counts := make(map[int]int)
	for _, pr := range profiles {
		counts[len(pr)]++
	}
	bestCount, bestVotes := 0, 0
	for c, v := range counts {
		if v > bestVotes || (v == bestVotes && c < bestCount) {
			bestCount, bestVotes = c, v
		}
	}
	used := 0
	avg := make([]batch.Stage, bestCount)
	for _, pr := range profiles {
		if len(pr) != bestCount {
			continue
		}
		used++
		for i, st := range pr {
			avg[i].WorkMcycles += st.WorkMcycles
			avg[i].MaxSpeedMHz += st.MaxSpeedMHz
			avg[i].MemoryMB += st.MemoryMB
		}
	}
	for i := range avg {
		avg[i].WorkMcycles /= float64(used)
		avg[i].MaxSpeedMHz /= float64(used)
		avg[i].MemoryMB /= float64(used)
	}
	return avg, used, nil
}

// BuildSpec assembles a submittable job spec from estimated stages.
func BuildSpec(name string, stages []batch.Stage, submit, deadline float64) (*batch.Spec, error) {
	spec := &batch.Spec{
		Name:         name,
		Stages:       append([]batch.Stage(nil), stages...),
		Submit:       submit,
		DesiredStart: submit,
		Deadline:     deadline,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
