#!/usr/bin/env bash
# Restart-recovery smoke test for dynplaced (the CI restart-recovery
# job; run locally with `make recovery-smoke`).
#
# Starts a durable daemon with a temp state dir, loads a web app, batch
# jobs and an extra node, kills the process with SIGKILL, restarts it
# from the same state dir, and asserts:
#
#   1. the stable placement projection (app instance placements, job
#      set, node set+states) matches the pre-kill capture;
#   2. /state shows exactly one restart with replayed WAL records;
#   3. no job was lost and completed work did not regress;
#   4. a SIGTERM shutdown flushes a final snapshot and exits 0.
#
# The byte-exact /placement equality is pinned by the deterministic
# SimClock tests (internal/daemon, internal/experiments); this script
# proves the same path end to end on the real binary under wall time,
# so it compares the projection that is stable across an extra cycle.
set -euo pipefail

PORT="${PORT:-18231}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
DPID=""
trap '{ [ -n "${DPID:-}" ] && kill -9 "$DPID" 2>/dev/null; } || true; rm -rf "$WORK"' EXIT

say() { echo "recovery-smoke: $*"; }

go build -o "$WORK/dynplaced" ./cmd/dynplaced

start_daemon() {
  "$WORK/dynplaced" -listen "127.0.0.1:$PORT" -cluster 3x3000/4096 \
    -cycle 1 -state-dir "$WORK/state" -snapshot-every 5 -quiet \
    >>"$WORK/daemon.log" 2>&1 &
  DPID=$!
}

wait_healthy() {
  for _ in $(seq 1 50); do
    status=$(curl -sf "$BASE/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["status"])' 2>/dev/null || echo down)
    [ "$status" = ok ] && return 0
    sleep 0.2
  done
  say "daemon never became healthy (last status: $status)"
  cat "$WORK/daemon.log" >&2
  return 1
}

# Stable projection of /placement: what must survive a restart even if
# an extra control cycle runs between capture and comparison.
project() {
  curl -sf "$BASE/placement" | python3 -c '
import json, sys
p = json.load(sys.stdin)
print(json.dumps({
    "web": sorted((w["name"], sorted(i["node"] for i in w["instances"])) for w in p["web"]),
    "jobs": sorted(j["name"] for j in p["jobs"]),
    "nodes": sorted((n["name"], n["state"]) for n in p["nodes"]),
}, sort_keys=True))'
}

total_done() {
  curl -sf "$BASE/placement" | python3 -c \
    'import json,sys; print(sum(j["doneMcycles"] for j in json.load(sys.stdin)["jobs"]))'
}

say "starting durable daemon on port $PORT"
start_daemon
wait_healthy

curl -sf -X POST "$BASE/apps" -d '{"app":{"name":"shop","arrivalRate":20,
  "demandPerRequest":50,"goalResponseTime":0.25,"memoryMB":800}}' >/dev/null
for j in etl report; do
  curl -sf -X POST "$BASE/jobs" -d '{"relative":true,"job":{"name":"'$j'",
    "workMcycles":9e6,"maxSpeedMHz":3000,"memoryMB":1000,"deadline":7200}}' >/dev/null
done
curl -sf -X POST "$BASE/nodes" -d '{"name":"spare","cpuMHz":2500,"memMB":2048}' >/dev/null

say "letting cycles run (action costs delay first progress)"
sleep 6
PRE="$(project)"
PRE_DONE="$(total_done)"

say "kill -9"
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true

say "restarting from $WORK/state"
start_daemon
wait_healthy
POST="$(project)"
POST_DONE="$(total_done)"

if [ "$PRE" != "$POST" ]; then
  say "FAIL: placement diverged across kill -9"
  echo "pre:  $PRE"
  echo "post: $POST"
  exit 1
fi
say "placement projection intact"

curl -sf "$BASE/state" | python3 -c '
import json, sys
s = json.load(sys.stdin)
restarts, replayed = s["restarts"], s["replayedRecords"]
assert s["enabled"], "durability disabled"
assert restarts == 1, "restarts = %d" % restarts
assert replayed > 0, "nothing replayed"
print("recovery-smoke: restarts=%d replayed=%d replay=%.4fs"
      % (restarts, replayed, s["replayDurationSeconds"]))'

python3 -c "
pre, post = float('$PRE_DONE'), float('$POST_DONE')
assert post >= pre, f'completed work regressed: {post} < {pre}'
print(f'recovery-smoke: completed work preserved ({pre:.0f} -> {post:.0f} Mcycles)')"

say "graceful SIGTERM"
kill -TERM "$DPID"
rc=0
wait "$DPID" || rc=$?   # capture under set -e so the FAIL branch stays reachable
if [ "$rc" -ne 0 ]; then
  say "FAIL: SIGTERM exit code $rc"
  exit 1
fi
grep -q "state flushed" "$WORK/daemon.log" || { say "FAIL: no final snapshot logged"; exit 1; }
say "PASS"
