#!/usr/bin/env bash
# Debug-bundle smoke test for dynplaced (the CI bundle-smoke job; run
# locally with `make bundle-smoke`).
#
# Starts a real daemon under wall time, loads a web app and a batch
# job plus one impossible job (so the explanation stream carries a
# denial), downloads /v1/debug/bundle, and asserts:
#
#   1. the response is a gzip tarball with the advertised Content-Type
#      and a .tar.gz attachment filename;
#   2. the archive lists and unpacks cleanly and contains every
#      advertised member (explanations, cycle traces, exposition,
#      config, state, health, placement);
#   3. metrics.prom is a non-empty exposition naming dynplace_ series
#      and carrying the build-info gauge;
#   4. explanations.json records at least one cycle, with the denied
#      job diagnosed as memory-bound;
#   5. config.json identifies the build (version + Go runtime) and the
#      effective cycle length.
#
# The deterministic SimClock tests (internal/daemon) pin the bundle's
# exact member contract; this script proves the same path end to end on
# the real binary: build, serve, curl, untar.
set -euo pipefail

PORT="${PORT:-18232}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
DPID=""
trap '{ [ -n "${DPID:-}" ] && kill -9 "$DPID" 2>/dev/null; } || true; rm -rf "$WORK"' EXIT

say() { echo "bundle-smoke: $*"; }

go build -o "$WORK/dynplaced" ./cmd/dynplaced

"$WORK/dynplaced" -listen "127.0.0.1:$PORT" -cluster 2x3000/4096 \
  -cycle 1 -quiet >>"$WORK/daemon.log" 2>&1 &
DPID=$!

wait_healthy() {
  for _ in $(seq 1 50); do
    status=$(curl -sf "$BASE/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["status"])' 2>/dev/null || echo down)
    [ "$status" = ok ] && return 0
    sleep 0.2
  done
  say "daemon never became healthy (last status: $status)"
  cat "$WORK/daemon.log" >&2
  return 1
}

say "starting daemon on port $PORT"
wait_healthy

curl -sf -X POST "$BASE/apps" -d '{"app":{"name":"shop","arrivalRate":20,
  "demandPerRequest":50,"goalResponseTime":0.25,"memoryMB":800}}' >/dev/null
curl -sf -X POST "$BASE/jobs" -d '{"relative":true,"job":{"name":"etl",
  "workMcycles":9e6,"maxSpeedMHz":3000,"memoryMB":1000,"deadline":7200}}' >/dev/null
# An 8 GB job on 4 GB nodes: guaranteed memory-bound denial in the
# explanation stream.
curl -sf -X POST "$BASE/jobs" -d '{"relative":true,"job":{"name":"hog",
  "workMcycles":9e6,"maxSpeedMHz":3000,"memoryMB":8192,"deadline":7200}}' >/dev/null

say "letting a few cycles run"
sleep 3

say "downloading /v1/debug/bundle"
HEADERS="$WORK/headers.txt"
curl -sf -D "$HEADERS" -o "$WORK/bundle.tar.gz" "$BASE/v1/debug/bundle"

grep -qi '^content-type: application/gzip' "$HEADERS" \
  || { say "FAIL: Content-Type is not application/gzip"; cat "$HEADERS"; exit 1; }
grep -qi '^content-disposition: .*\.tar\.gz' "$HEADERS" \
  || { say "FAIL: no .tar.gz attachment filename"; cat "$HEADERS"; exit 1; }

say "archive listing:"
tar -tzf "$WORK/bundle.tar.gz"
mkdir "$WORK/bundle"
tar -xzf "$WORK/bundle.tar.gz" -C "$WORK/bundle"

for member in explanations.json cycles.json metrics.prom config.json \
              state.json health.json placement.json; do
  [ -s "$WORK/bundle/$member" ] \
    || { say "FAIL: bundle member $member missing or empty"; exit 1; }
done
say "all advertised members present"

grep -q '^dynplace_cycles_total' "$WORK/bundle/metrics.prom" \
  || { say "FAIL: metrics.prom lacks dynplace_cycles_total"; exit 1; }
grep -q '^dynplace_build_info{' "$WORK/bundle/metrics.prom" \
  || { say "FAIL: metrics.prom lacks dynplace_build_info"; exit 1; }

python3 -c '
import json, sys
root = sys.argv[1]
with open(root + "/explanations.json") as f:
    ex = json.load(f)["explanations"]
assert ex, "no explanations recorded"
last = ex[-1]
assert last["cycle"] > 0, "cycle counter never advanced"
apps = {a["app"]: a for a in last["explanation"]["apps"]}
hog = apps["hog"]
assert hog["outcome"] == "denied", "hog outcome = %s" % hog["outcome"]
assert hog["binding"] == "memory", "hog binding = %s" % hog["binding"]
assert hog["reasons"][-1] == "binding constraint: memory", hog["reasons"]
with open(root + "/config.json") as f:
    cfg = json.load(f)
assert cfg["version"] and cfg["goVersion"], "config lacks build identity"
assert cfg["cycleSeconds"] == 1, "cycleSeconds = %r" % cfg["cycleSeconds"]
print("bundle-smoke: %d explanation(s); hog denied (memory) at cycle %d; build %s / %s"
      % (len(ex), last["cycle"], cfg["version"], cfg["goVersion"]))' "$WORK/bundle"

kill -TERM "$DPID"
wait "$DPID" || true
DPID=""
say "PASS"
