#!/usr/bin/env bash
# Enforce the statement-coverage floor on the forecasting stack: the
# demand estimator and the trace codec feed placement decisions, so
# untested branches there turn directly into misplacements. The floor
# is per package, read from the standard `go test -cover` summary.
set -euo pipefail

FLOOR=85
PACKAGES=(./internal/forecast ./internal/trace)

fail=0
for pkg in "${PACKAGES[@]}"; do
    out=$(go test -cover "$pkg")
    echo "$out"
    pct=$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "coverage_floor: no coverage figure in output for $pkg" >&2
        fail=1
        continue
    fi
    below=$(awk -v p="$pct" -v f="$FLOOR" 'BEGIN {print (p < f) ? 1 : 0}')
    if [ "$below" = "1" ]; then
        echo "coverage_floor: $pkg at ${pct}% is below the ${FLOOR}% floor" >&2
        fail=1
    fi
done
exit $fail
