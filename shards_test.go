package dynplace

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// shardScenario drives one mixed web+batch run and returns the
// observable outcome: job results and total placement churn.
func shardScenario(t *testing.T, extra ...Option) ([]JobResult, int) {
	t.Helper()
	opts := append([]Option{
		WithUniformCluster(8, 15600, 16384),
		WithControlCycle(300),
		WithDynamicPlacement(),
	}, extra...)
	sys := newTestSystem(t, opts...)
	if err := sys.AddWebApp(WebAppSpec{
		Name: "web", ArrivalRate: 100, DemandPerRequest: 120,
		BaseLatency: 0.04, GoalResponseTime: 0.25,
		MaxPowerMHz: 30000, MemoryMB: 2000,
	}); err != nil {
		t.Fatalf("AddWebApp: %v", err)
	}
	for j := 0; j < 8; j++ {
		if err := sys.SubmitJob(JobSpec{
			Name: fmt.Sprintf("job-%d", j), WorkMcycles: 3900 * 1200,
			MaxSpeedMHz: 3900, MemoryMB: 4320,
			Submit: float64(j) * 300, Deadline: 6 * 3600,
		}); err != nil {
			t.Fatalf("SubmitJob: %v", err)
		}
	}
	if err := sys.RunUntilDrained(36000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return sys.JobResults(), sys.PlacementChanges()
}

func TestWithShardsEndToEnd(t *testing.T) {
	results, _ := shardScenario(t, WithShards(2))
	if len(results) != 8 {
		t.Fatalf("results = %d, want 8", len(results))
	}
	for _, r := range results {
		if !r.Completed {
			t.Fatalf("job %s did not complete under sharding", r.Name)
		}
		if !r.MetGoal {
			t.Fatalf("job %s missed its goal under sharding", r.Name)
		}
	}
}

// TestSingleShardMatchesFlatSystem pins the single-shard guarantee at
// the public-API level: a system configured with WithShards(1) must
// behave identically to the flat system over a whole run — same job
// outcomes, same placement churn.
func TestSingleShardMatchesFlatSystem(t *testing.T) {
	flatResults, flatChanges := shardScenario(t)
	shardResults, shardChanges := shardScenario(t, WithShards(1))
	if !reflect.DeepEqual(flatResults, shardResults) {
		t.Fatalf("single-shard run diverged from flat run:\nflat:  %+v\nshard: %+v",
			flatResults, shardResults)
	}
	if flatChanges != shardChanges {
		t.Fatalf("placement changes: flat %d, single-shard %d", flatChanges, shardChanges)
	}
}

// TestShardedRunsAreReproducible pins rebalancing determinism at the
// public-API level: two identical sharded runs with the same seed must
// produce identical outcomes at any parallelism setting.
func TestShardedRunsAreReproducible(t *testing.T) {
	base, baseChanges := shardScenario(t, WithShardSpec(ShardSpec{Count: 2, Seed: 42}))
	for _, par := range []int{1, 3} {
		got, gotChanges := shardScenario(t,
			WithShardSpec(ShardSpec{Count: 2, Seed: 42}), WithParallelism(par))
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("parallelism %d: sharded run not reproducible:\nbase: %+v\ngot:  %+v",
				par, base, got)
		}
		if baseChanges != gotChanges {
			t.Fatalf("parallelism %d: changes %d, want %d", par, gotChanges, baseChanges)
		}
	}
}

func TestWithShardsPolicyMode(t *testing.T) {
	sys := newTestSystem(t,
		WithUniformCluster(8, 15600, 16384),
		WithControlCycle(300),
		WithPolicy("apc"),
		WithFreePlacementActions(),
		WithShards(2),
	)
	for j := 0; j < 6; j++ {
		if err := sys.SubmitJob(JobSpec{
			Name: fmt.Sprintf("batch-%d", j), WorkMcycles: 3900 * 1200,
			MaxSpeedMHz: 3900, MemoryMB: 4320, Deadline: 4 * 3600,
		}); err != nil {
			t.Fatalf("SubmitJob: %v", err)
		}
	}
	if err := sys.RunUntilDrained(36000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := sys.OnTimeRate(); got != 1 {
		t.Fatalf("on-time rate = %v, want 1", got)
	}
}

func TestWithShardsValidation(t *testing.T) {
	if _, err := NewSystem(
		WithUniformCluster(2, 1000, 2000),
		WithShards(0),
	); !errors.Is(err, ErrBadOption) {
		t.Fatalf("WithShards(0): err = %v, want ErrBadOption", err)
	}
	if _, err := NewSystem(
		WithUniformCluster(2, 1000, 2000),
		WithShardSpec(ShardSpec{Count: -3}),
	); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative count: err = %v, want ErrBadOption", err)
	}
}
