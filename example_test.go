package dynplace_test

import (
	"fmt"

	"dynplace"
)

// The basic flow: configure a cluster, register workloads, run the
// simulation, inspect outcomes.
func Example() {
	sys, err := dynplace.NewSystem(
		dynplace.WithUniformCluster(2, 15600, 16384),
		dynplace.WithControlCycle(300),
		dynplace.WithPolicy("apc"),
		dynplace.WithFreePlacementActions(),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.SubmitJob(dynplace.JobSpec{
		Name:        "analysis",
		WorkMcycles: 3900 * 1800, // 30 min at full speed
		MaxSpeedMHz: 3900,
		MemoryMB:    4320,
		Submit:      0,
		Deadline:    2 * 3600,
	}); err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.RunUntilDrained(86400); err != nil {
		fmt.Println(err)
		return
	}
	r := sys.JobResults()[0]
	fmt.Printf("completed=%v metGoal=%v at %.0f s\n", r.Completed, r.MetGoal, r.CompletedAt)
	// Output: completed=true metGoal=true at 1800 s
}

// Dynamic placement trades CPU between a web application and batch jobs
// by equalizing their relative performance.
func ExampleNewSystem_dynamicPlacement() {
	sys, err := dynplace.NewSystem(
		dynplace.WithUniformCluster(2, 15600, 16384),
		dynplace.WithControlCycle(300),
		dynplace.WithDynamicPlacement(),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.AddWebApp(dynplace.WebAppSpec{
		Name: "api", ArrivalRate: 50, DemandPerRequest: 100,
		BaseLatency: 0.02, GoalResponseTime: 0.2,
		MaxPowerMHz: 12000, MemoryMB: 1500,
	}); err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.Run(1200); err != nil {
		fmt.Println(err)
		return
	}
	pts := sys.WebUtilitySeries("api")
	fmt.Printf("samples=%d first=%.3f\n", len(pts), pts[0].Value)
	// Output: samples=5 first=0.829
}

// Jobs can declare placement constraints: this pair never shares a node.
func ExampleJobSpec_antiCollocate() {
	sys, err := dynplace.NewSystem(
		dynplace.WithUniformCluster(2, 15600, 16384),
		dynplace.WithControlCycle(300),
		dynplace.WithPolicy("apc"),
		dynplace.WithFreePlacementActions(),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	_ = sys.SubmitJob(dynplace.JobSpec{
		Name: "io-heavy", WorkMcycles: 3900 * 600, MaxSpeedMHz: 3900,
		MemoryMB: 4320, Deadline: 7200,
		AntiCollocate: []string{"latency-probe"},
	})
	_ = sys.SubmitJob(dynplace.JobSpec{
		Name: "latency-probe", WorkMcycles: 3900 * 600, MaxSpeedMHz: 3900,
		MemoryMB: 4320, Deadline: 7200,
	})
	if err := sys.RunUntilDrained(86400); err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range sys.JobResults() {
		fmt.Printf("%s met=%v\n", r.Name, r.MetGoal)
	}
	// Output:
	// io-heavy met=true
	// latency-probe met=true
}
