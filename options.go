package dynplace

import (
	"errors"
	"fmt"
	"strings"

	"dynplace/internal/cluster"
	"dynplace/internal/control"
	"dynplace/internal/forecast"
	"dynplace/internal/scheduler"
)

// Option configures a System.
type Option func(*settings) error

type settings struct {
	nodes        []cluster.Node
	cycleSeconds float64
	costs        cluster.CostModel
	costsSet     bool

	policyName string
	dynamic    bool
	webNodes   []cluster.NodeID
	forecast   *forecast.Config

	epsilon           float64
	maxPasses         int
	parallelism       int
	exactHypothetical bool
	shards            ShardSpec
}

// ErrBadOption reports an invalid configuration.
var ErrBadOption = errors.New("dynplace: invalid option")

// WithUniformCluster adds count identical nodes with the given per-node
// CPU capacity (MHz) and memory (MB).
func WithUniformCluster(count int, cpuMHz, memMB float64) Option {
	return func(s *settings) error {
		if count <= 0 || cpuMHz <= 0 || memMB <= 0 {
			return fmt.Errorf("%w: cluster dimensions must be positive", ErrBadOption)
		}
		for i := 0; i < count; i++ {
			s.nodes = append(s.nodes, cluster.Node{CPUMHz: cpuMHz, MemMB: memMB})
		}
		return nil
	}
}

// WithNode adds one node with the given capacities. Nodes are numbered in
// the order added, starting at 0.
func WithNode(name string, cpuMHz, memMB float64) Option {
	return func(s *settings) error {
		if cpuMHz <= 0 || memMB <= 0 {
			return fmt.Errorf("%w: node capacities must be positive", ErrBadOption)
		}
		s.nodes = append(s.nodes, cluster.Node{Name: name, CPUMHz: cpuMHz, MemMB: memMB})
		return nil
	}
}

// WithClusterSpec adds nodes from a compact inventory description:
// comma-separated "COUNTxCPU_MHZ/MEM_MB" groups, e.g.
// "4x3000/4096,1x6400/8192" — the same format the dynplaced daemon
// accepts on its command line.
func WithClusterSpec(spec string) Option {
	return func(s *settings) error {
		nodes, err := cluster.ParseNodes(spec)
		if err != nil {
			return fmt.Errorf("%w: %w", ErrBadOption, err)
		}
		s.nodes = append(s.nodes, nodes...)
		return nil
	}
}

// WithControlCycle sets the control cycle length T in seconds.
func WithControlCycle(seconds float64) Option {
	return func(s *settings) error {
		if seconds <= 0 {
			return fmt.Errorf("%w: control cycle must be positive", ErrBadOption)
		}
		s.cycleSeconds = seconds
		return nil
	}
}

// WithDynamicPlacement manages web applications and batch jobs together
// on all nodes via the placement controller — the paper's technique.
func WithDynamicPlacement() Option {
	return func(s *settings) error {
		if s.policyName != "" {
			return fmt.Errorf("%w: dynamic placement excludes WithPolicy", ErrBadOption)
		}
		s.dynamic = true
		return nil
	}
}

// ForecastSpec configures the online demand estimator behind
// forecast-driven placement. Zero fields take the estimator defaults
// (one-day season, 48 template slots, smoothing time constants derived
// from the season).
type ForecastSpec struct {
	// SeasonSeconds is the seasonal period of the demand pattern.
	SeasonSeconds float64
	// Slots is the number of seasonal-template buckets per season.
	Slots int
	// LevelTauSeconds and TrendTauSeconds are the time constants of
	// the level and trend smoothers: an observation Δt after the
	// previous one moves the estimate by 1 − exp(−Δt/τ) of the
	// innovation.
	LevelTauSeconds float64
	TrendTauSeconds float64
	// SeasonalGamma is the per-visit EWMA weight of the seasonal
	// template update, in (0, 1].
	SeasonalGamma float64
}

// WithForecast plans each control cycle against predicted next-cycle
// demand instead of the last observed arrival rate, using the default
// estimator configuration (one-day season, 48 template slots).
// Requires WithDynamicPlacement.
func WithForecast() Option {
	return WithForecastSpec(ForecastSpec{})
}

// WithForecastSpec is WithForecast with an explicit estimator
// configuration. Requires WithDynamicPlacement.
func WithForecastSpec(spec ForecastSpec) Option {
	return func(s *settings) error {
		if spec.SeasonSeconds < 0 || spec.Slots < 0 ||
			spec.LevelTauSeconds < 0 || spec.TrendTauSeconds < 0 {
			return fmt.Errorf("%w: forecast parameters must be nonnegative", ErrBadOption)
		}
		if spec.SeasonalGamma < 0 || spec.SeasonalGamma > 1 {
			return fmt.Errorf("%w: seasonal gamma must be in [0, 1]", ErrBadOption)
		}
		s.forecast = &forecast.Config{
			SeasonSeconds:   spec.SeasonSeconds,
			Slots:           spec.Slots,
			LevelTauSeconds: spec.LevelTauSeconds,
			TrendTauSeconds: spec.TrendTauSeconds,
			SeasonalGamma:   spec.SeasonalGamma,
		}
		return nil
	}
}

// WithPolicy schedules batch jobs with the named policy: "apc" (the
// placement controller restricted to batch work), "edf" (preemptive
// Earliest Deadline First) or "fcfs" (non-preemptive First-Come
// First-Served).
func WithPolicy(name string) Option {
	return func(s *settings) error {
		if s.dynamic {
			return fmt.Errorf("%w: WithPolicy excludes dynamic placement", ErrBadOption)
		}
		switch strings.ToLower(name) {
		case "apc", "edf", "fcfs":
			s.policyName = strings.ToLower(name)
			return nil
		default:
			return fmt.Errorf("%w: unknown policy %q", ErrBadOption, name)
		}
	}
}

// WithStaticWebPartition dedicates the listed nodes to the web
// applications (policy mode): batch jobs run on the remaining nodes.
func WithStaticWebPartition(nodes ...int) Option {
	return func(s *settings) error {
		for _, n := range nodes {
			if n < 0 {
				return fmt.Errorf("%w: negative node id %d", ErrBadOption, n)
			}
			s.webNodes = append(s.webNodes, cluster.NodeID(n))
		}
		return nil
	}
}

// WithPlacementCosts sets the virtualization action cost model: the
// per-MB suspend, resume and migration factors and the fixed boot time,
// in seconds. The defaults are the paper's measured constants
// (0.0353 s/MB, 0.0333 s/MB, 0.0132 s/MB, 3.6 s).
func WithPlacementCosts(suspendPerMB, resumePerMB, migratePerMB, bootSeconds float64) Option {
	return func(s *settings) error {
		if suspendPerMB < 0 || resumePerMB < 0 || migratePerMB < 0 || bootSeconds < 0 {
			return fmt.Errorf("%w: costs must be nonnegative", ErrBadOption)
		}
		s.costs = cluster.CostModel{
			SuspendPerMB: suspendPerMB,
			ResumePerMB:  resumePerMB,
			MigratePerMB: migratePerMB,
			BootSeconds:  bootSeconds,
		}
		s.costsSet = true
		return nil
	}
}

// WithFreePlacementActions disables placement-action costs (the paper's
// Experiment Two setting).
func WithFreePlacementActions() Option {
	return func(s *settings) error {
		s.costs = cluster.FreeCostModel()
		s.costsSet = true
		return nil
	}
}

// WithComparisonResolution sets the utility-comparison resolution ε used
// by the placement optimizer (default 0.02): configurations tying at
// this resolution keep the current placement.
func WithComparisonResolution(eps float64) Option {
	return func(s *settings) error {
		if eps <= 0 || eps >= 1 {
			return fmt.Errorf("%w: resolution must be in (0,1)", ErrBadOption)
		}
		s.epsilon = eps
		return nil
	}
}

// WithExactHypothetical switches the batch performance predictor from
// the paper's sampled-grid interpolation to exact bisection.
func WithExactHypothetical() Option {
	return func(s *settings) error {
		s.exactHypothetical = true
		return nil
	}
}

// WithOptimizerPasses bounds the placement optimizer's improvement
// sweeps per cycle (default 3).
func WithOptimizerPasses(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return fmt.Errorf("%w: passes must be positive", ErrBadOption)
		}
		s.maxPasses = n
		return nil
	}
}

// WithParallelism bounds the placement optimizer's candidate-evaluation
// worker pool: 1 evaluates sequentially, n > 1 uses n workers, and 0
// (the default) uses every available CPU. Placement decisions are
// bit-identical at every setting — only solve latency changes — so this
// is purely a latency/footprint knob.
func WithParallelism(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("%w: parallelism must be nonnegative", ErrBadOption)
		}
		s.parallelism = n
		return nil
	}
}

// ShardSpec configures the sharded placement coordinator: the cluster
// is partitioned into Count zones, each solved as an independent
// placement problem every cycle, with workloads rebalanced across zones
// from per-zone utilization and unmet demand. Seed drives the
// deterministic first-touch spreading of new workloads; for a fixed
// spec the resulting placements are fully reproducible.
type ShardSpec struct {
	// Count is the number of zones. 1 engages the coordinator with a
	// single zone, whose placements are bit-identical to the flat
	// solver's.
	Count int
	// Seed is the deterministic rebalancing seed (0 is a valid seed).
	Seed int64
}

// WithShards partitions the cluster into count zones solved
// concurrently — the scaling lever for clusters too large for one flat
// placement problem per cycle. Shorthand for WithShardSpec with a zero
// seed.
func WithShards(count int) Option {
	return WithShardSpec(ShardSpec{Count: count})
}

// WithShardSpec configures the sharded placement coordinator with an
// explicit zone count and rebalancing seed.
func WithShardSpec(spec ShardSpec) Option {
	return func(s *settings) error {
		if spec.Count < 1 {
			return fmt.Errorf("%w: shard count must be at least 1, got %d", ErrBadOption, spec.Count)
		}
		s.shards = spec
		return nil
	}
}

// build assembles the control-loop configuration.
func (s *settings) build() (control.Config, error) {
	if len(s.nodes) == 0 {
		return control.Config{}, fmt.Errorf("%w: no nodes configured", ErrBadOption)
	}
	if s.cycleSeconds == 0 {
		s.cycleSeconds = 600
	}
	if !s.costsSet {
		s.costs = cluster.DefaultCostModel()
	}
	cl, err := cluster.New(s.nodes...)
	if err != nil {
		return control.Config{}, err
	}
	cfg := control.Config{
		Cluster:      cl,
		CycleSeconds: s.cycleSeconds,
		Costs:        s.costs,
		WebNodes:     s.webNodes,
	}
	if s.forecast != nil && !s.dynamic {
		return control.Config{}, fmt.Errorf("%w: WithForecast requires WithDynamicPlacement", ErrBadOption)
	}
	switch {
	case s.dynamic:
		cfg.Dynamic = &control.DynamicConfig{
			Epsilon:           s.epsilon,
			MaxPasses:         s.maxPasses,
			ExactHypothetical: s.exactHypothetical,
			Parallelism:       s.parallelism,
			Shards:            s.shards.Count,
			ShardSeed:         s.shards.Seed,
			Forecast:          s.forecast,
		}
	case s.policyName == "" || s.policyName == "apc":
		cfg.Policy = &scheduler.APC{
			Costs:             s.costs,
			Epsilon:           s.epsilon,
			MaxPasses:         s.maxPasses,
			ExactHypothetical: s.exactHypothetical,
			Parallelism:       s.parallelism,
			Shards:            s.shards.Count,
			ShardSeed:         s.shards.Seed,
		}
	case s.policyName == "edf":
		cfg.Policy = scheduler.EDF{}
	case s.policyName == "fcfs":
		cfg.Policy = scheduler.FCFS{}
	}
	return cfg, nil
}
