package dynplace

import (
	"errors"
	"testing"
)

func TestForecastOptionValidation(t *testing.T) {
	tests := []struct {
		name string
		opts []Option
	}{
		{"forecast without dynamic", []Option{
			WithUniformCluster(1, 10000, 8000), WithForecast()}},
		{"forecast with policy", []Option{
			WithUniformCluster(1, 10000, 8000), WithPolicy("edf"), WithForecast()}},
		{"negative season", []Option{
			WithUniformCluster(1, 10000, 8000), WithDynamicPlacement(),
			WithForecastSpec(ForecastSpec{SeasonSeconds: -1})}},
		{"negative slots", []Option{
			WithUniformCluster(1, 10000, 8000), WithDynamicPlacement(),
			WithForecastSpec(ForecastSpec{Slots: -4})}},
		{"gamma above one", []Option{
			WithUniformCluster(1, 10000, 8000), WithDynamicPlacement(),
			WithForecastSpec(ForecastSpec{SeasonalGamma: 1.5})}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSystem(tt.opts...); !errors.Is(err, ErrBadOption) {
				t.Fatalf("err = %v, want ErrBadOption", err)
			}
		})
	}
}

// TestForecastOptionRuns: a dynamic system with forecasting on runs a
// scheduled load ramp end to end — the estimator rides along inside the
// planner without disturbing the public simulation API.
func TestForecastOptionRuns(t *testing.T) {
	sys := newTestSystem(t,
		WithUniformCluster(2, 6000, 8000),
		WithControlCycle(60),
		WithDynamicPlacement(),
		WithFreePlacementActions(),
		WithForecastSpec(ForecastSpec{
			SeasonSeconds: 3600, Slots: 12,
			LevelTauSeconds: 120, TrendTauSeconds: 240,
		}),
	)
	if err := sys.AddWebApp(WebAppSpec{
		Name: "shop", ArrivalRate: 10, DemandPerRequest: 100,
		BaseLatency: 0.02, GoalResponseTime: 0.25, MemoryMB: 1000,
		LoadSchedule: []LoadPhase{
			{Start: 600, ArrivalRate: 20},
			{Start: 1200, ArrivalRate: 30},
		},
	}); err != nil {
		t.Fatalf("AddWebApp: %v", err)
	}
	if err := sys.SubmitJob(JobSpec{
		Name: "night", WorkMcycles: 3e5, MaxSpeedMHz: 3000, MemoryMB: 2000,
		Submit: 0, Deadline: 1800,
	}); err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if err := sys.Run(1800); err != nil {
		t.Fatalf("Run: %v", err)
	}
	series := sys.WebUtilitySeries("shop")
	if len(series) == 0 {
		t.Fatal("no web utility series recorded")
	}
	for _, p := range series {
		if p.Value < -1 {
			t.Fatalf("utility collapsed at t=%g: %g (forecast-driven plan starved the app)", p.Time, p.Value)
		}
	}
}
