package dynplace

import (
	"errors"
	"math"
	"testing"
)

func newTestSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	sys, err := NewSystem(opts...)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	tests := []struct {
		name string
		opts []Option
	}{
		{"no nodes", []Option{WithControlCycle(60)}},
		{"bad cluster", []Option{WithUniformCluster(0, 100, 100)}},
		{"bad cycle", []Option{WithUniformCluster(1, 100, 100), WithControlCycle(-1)}},
		{"bad policy", []Option{WithUniformCluster(1, 100, 100), WithPolicy("lifo")}},
		{"policy + dynamic", []Option{WithUniformCluster(1, 100, 100),
			WithPolicy("edf"), WithDynamicPlacement()}},
		{"dynamic + policy", []Option{WithUniformCluster(1, 100, 100),
			WithDynamicPlacement(), WithPolicy("edf")}},
		{"bad resolution", []Option{WithUniformCluster(1, 100, 100), WithComparisonResolution(2)}},
		{"bad passes", []Option{WithUniformCluster(1, 100, 100), WithOptimizerPasses(0)}},
		{"negative costs", []Option{WithUniformCluster(1, 100, 100),
			WithPlacementCosts(-1, 0, 0, 0)}},
		{"bad node", []Option{WithNode("x", -5, 100)}},
		{"bad partition", []Option{WithUniformCluster(1, 100, 100), WithStaticWebPartition(-2)}},
		{"bad parallelism", []Option{WithUniformCluster(1, 100, 100), WithParallelism(-1)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSystem(tt.opts...); err == nil {
				t.Fatal("NewSystem succeeded, want error")
			}
		})
	}
}

func TestQuickstartFlow(t *testing.T) {
	sys := newTestSystem(t,
		WithUniformCluster(1, 1000, 2000),
		WithControlCycle(1),
		WithPolicy("apc"),
		WithFreePlacementActions(),
	)
	if err := sys.SubmitJob(JobSpec{
		Name: "j1", WorkMcycles: 4000, MaxSpeedMHz: 1000, MemoryMB: 750,
		Submit: 0, Deadline: 20,
	}); err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if err := sys.RunUntilDrained(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	results := sys.JobResults()
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	if !r.Completed || !r.MetGoal {
		t.Fatalf("result = %+v", r)
	}
	if math.Abs(r.CompletedAt-4) > 1e-6 {
		t.Fatalf("CompletedAt = %v, want 4", r.CompletedAt)
	}
	if math.Abs(r.Utility-0.8) > 1e-6 {
		t.Fatalf("Utility = %v, want 0.8", r.Utility)
	}
	if sys.OnTimeRate() != 1 {
		t.Fatalf("OnTimeRate = %v", sys.OnTimeRate())
	}
	if sys.Now() < 4 {
		t.Fatalf("Now = %v", sys.Now())
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	sys := newTestSystem(t,
		WithUniformCluster(1, 10000, 8000),
		WithControlCycle(60),
		WithDynamicPlacement(),
	)
	web := WebAppSpec{
		Name: "shop", ArrivalRate: 10, DemandPerRequest: 50,
		BaseLatency: 0.01, GoalResponseTime: 0.2, MemoryMB: 500,
	}
	if err := sys.AddWebApp(web); err != nil {
		t.Fatalf("AddWebApp: %v", err)
	}
	if err := sys.AddWebApp(web); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("duplicate web app: err = %v", err)
	}
	job := JobSpec{Name: "job", WorkMcycles: 100, MaxSpeedMHz: 100, MemoryMB: 10,
		Submit: 0, Deadline: 100}
	if err := sys.SubmitJob(job); err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if err := sys.SubmitJob(job); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("duplicate job: err = %v", err)
	}
}

func TestMutationAfterStartRejected(t *testing.T) {
	sys := newTestSystem(t,
		WithUniformCluster(1, 1000, 2000),
		WithControlCycle(1),
		WithPolicy("fcfs"),
	)
	if err := sys.Run(5); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := sys.SubmitJob(JobSpec{Name: "late", WorkMcycles: 1, MaxSpeedMHz: 1,
		MemoryMB: 1, Deadline: 10}); !errors.Is(err, ErrStarted) {
		t.Fatalf("late submit: err = %v", err)
	}
	if err := sys.AddWebApp(WebAppSpec{Name: "late"}); !errors.Is(err, ErrStarted) {
		t.Fatalf("late web app: err = %v", err)
	}
}

func TestInvalidSpecsRejected(t *testing.T) {
	sys := newTestSystem(t,
		WithUniformCluster(1, 1000, 2000),
		WithControlCycle(1),
		WithPolicy("fcfs"),
	)
	if err := sys.SubmitJob(JobSpec{Name: "bad"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad job: err = %v", err)
	}
	if err := sys.AddWebApp(WebAppSpec{Name: "bad"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad web app: err = %v", err)
	}
}

func TestMultiStageJobThroughPublicAPI(t *testing.T) {
	sys := newTestSystem(t,
		WithUniformCluster(1, 1000, 4000),
		WithControlCycle(1),
		WithPolicy("apc"),
		WithFreePlacementActions(),
	)
	err := sys.SubmitJob(JobSpec{
		Name: "etl",
		Stages: []Stage{
			{WorkMcycles: 1000, MaxSpeedMHz: 1000, MemoryMB: 500},
			{WorkMcycles: 500, MaxSpeedMHz: 250, MemoryMB: 1500},
		},
		Submit: 0, Deadline: 30,
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if err := sys.RunUntilDrained(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := sys.JobResults()[0]
	if !r.Completed {
		t.Fatal("multi-stage job incomplete")
	}
	// Stage 1 at 1000 MHz: 1 s. Stage 2 at 250 MHz: 2 s. Total 3 s.
	if math.Abs(r.CompletedAt-3) > 1e-6 {
		t.Fatalf("CompletedAt = %v, want 3", r.CompletedAt)
	}
}

func TestDynamicSharingThroughPublicAPI(t *testing.T) {
	sys := newTestSystem(t,
		WithUniformCluster(2, 10000, 16000),
		WithControlCycle(60),
		WithDynamicPlacement(),
		WithFreePlacementActions(),
	)
	if err := sys.AddWebApp(WebAppSpec{
		Name: "store", ArrivalRate: 50, DemandPerRequest: 100,
		BaseLatency: 0.02, GoalResponseTime: 0.2,
		MaxPowerMHz: 12000, MemoryMB: 1000,
	}); err != nil {
		t.Fatalf("AddWebApp: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := sys.SubmitJob(JobSpec{
			Name:        jobName("batch", i),
			WorkMcycles: 3000 * 600, MaxSpeedMHz: 3000, MemoryMB: 6000,
			Submit: 0, Deadline: 3000,
		}); err != nil {
			t.Fatalf("SubmitJob: %v", err)
		}
	}
	if err := sys.Run(1800); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pts := sys.WebUtilitySeries("store"); len(pts) == 0 {
		t.Fatal("no web utility series")
	}
	if pts := sys.WebAllocationSeries("store"); len(pts) == 0 {
		t.Fatal("no web allocation series")
	}
	if pts := sys.BatchUtilitySeries(); len(pts) == 0 {
		t.Fatal("no batch utility series")
	}
	if pts := sys.BatchAllocationSeries(); len(pts) == 0 {
		t.Fatal("no batch allocation series")
	}
	if pts := sys.WebUtilitySeries("ghost"); pts != nil {
		t.Fatal("unknown app returned a series")
	}
	// Web + batch allocations never exceed cluster capacity.
	webAlloc := sys.WebAllocationSeries("store")
	batchAlloc := sys.BatchAllocationSeries()
	for i := range webAlloc {
		if i < len(batchAlloc) && webAlloc[i].Value+batchAlloc[i].Value > 20000+1 {
			t.Fatalf("t=%v: allocations exceed capacity", webAlloc[i].Time)
		}
	}
}

func TestFailNodeThroughPublicAPI(t *testing.T) {
	sys := newTestSystem(t,
		WithNode("a", 1000, 2000),
		WithNode("b", 1000, 2000),
		WithControlCycle(1),
		WithPolicy("apc"),
		WithFreePlacementActions(),
	)
	for i := 0; i < 2; i++ {
		if err := sys.SubmitJob(JobSpec{
			Name: jobName("j", i), WorkMcycles: 8000, MaxSpeedMHz: 1000,
			MemoryMB: 750, Submit: 0, Deadline: 60,
		}); err != nil {
			t.Fatalf("SubmitJob: %v", err)
		}
	}
	if err := sys.FailNode(3, 1); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if err := sys.RunUntilDrained(200); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rescues := 0
	for _, r := range sys.JobResults() {
		if !r.Completed {
			t.Fatalf("%s incomplete after node failure", r.Name)
		}
		rescues += r.Rescues
	}
	// The displaced job's re-placement is involuntary: it must show up
	// as a rescue, not in the voluntary placement-change metric.
	if rescues == 0 {
		t.Fatal("node failure should force a rescue")
	}
}

func TestStaticPartitionThroughPublicAPI(t *testing.T) {
	sys := newTestSystem(t,
		WithUniformCluster(3, 10000, 16000),
		WithControlCycle(60),
		WithPolicy("fcfs"),
		WithStaticWebPartition(0),
	)
	if err := sys.AddWebApp(WebAppSpec{
		Name: "store", ArrivalRate: 20, DemandPerRequest: 100,
		BaseLatency: 0.02, GoalResponseTime: 0.2,
		MaxPowerMHz: 8000, MemoryMB: 1000,
	}); err != nil {
		t.Fatalf("AddWebApp: %v", err)
	}
	if err := sys.SubmitJob(JobSpec{
		Name: "batch", WorkMcycles: 3000 * 100, MaxSpeedMHz: 3000,
		MemoryMB: 6000, Submit: 0, Deadline: 2000,
	}); err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if err := sys.RunUntilDrained(5000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The static partition fully satisfies the web app.
	pts := sys.WebUtilitySeries("store")
	if len(pts) == 0 {
		t.Fatal("no web series")
	}
	for _, p := range pts {
		if p.Value < 0.5 {
			t.Fatalf("static web utility %v at t=%v", p.Value, p.Time)
		}
	}
	if !sys.JobResults()[0].MetGoal {
		t.Fatal("batch job should meet its goal on its partition")
	}
}

func jobName(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i))
}

// TestParallelismDoesNotChangeOutcomes runs the same dynamic-placement
// scenario with sequential and parallel candidate evaluation through
// the public API; job outcomes must match exactly.
func TestParallelismDoesNotChangeOutcomes(t *testing.T) {
	run := func(workers int) []JobResult {
		sys := newTestSystem(t,
			WithUniformCluster(3, 15600, 16384),
			WithControlCycle(300),
			WithDynamicPlacement(),
			WithParallelism(workers),
		)
		if err := sys.AddWebApp(WebAppSpec{
			Name: "web", ArrivalRate: 80, DemandPerRequest: 120,
			BaseLatency: 0.04, GoalResponseTime: 0.25,
			MaxPowerMHz: 20000, MemoryMB: 2000,
		}); err != nil {
			t.Fatalf("AddWebApp: %v", err)
		}
		for j := 0; j < 5; j++ {
			if err := sys.SubmitJob(JobSpec{
				Name: jobName("job", j), WorkMcycles: 3900 * 900,
				MaxSpeedMHz: 3900, MemoryMB: 4320,
				Submit: float64(j) * 200, Deadline: 4 * 3600,
			}); err != nil {
				t.Fatalf("SubmitJob: %v", err)
			}
		}
		if err := sys.RunUntilDrained(36000); err != nil {
			t.Fatalf("RunUntilDrained: %v", err)
		}
		return sys.JobResults()
	}
	seq := run(1)
	par := run(4)
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("job %d diverged:\nsequential %+v\nparallel   %+v", i, seq[i], par[i])
		}
	}
}

func TestNodeChurnThroughPublicAPI(t *testing.T) {
	sys := newTestSystem(t,
		WithUniformCluster(2, 1000, 4000),
		WithControlCycle(10),
		WithDynamicPlacement(),
		WithFreePlacementActions(),
	)
	for i := 0; i < 3; i++ {
		if err := sys.SubmitJob(JobSpec{
			Name: jobName("churn", i), WorkMcycles: 60000, MaxSpeedMHz: 1000,
			MemoryMB: 1500, Submit: 0, Deadline: 200,
		}); err != nil {
			t.Fatalf("SubmitJob: %v", err)
		}
	}
	// Node 1 dies at t=30; a replacement joins at t=60; node 0 drains at
	// t=100 once the spare is carrying load.
	if err := sys.FailNode(30, 1); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if err := sys.AddNode(60, "spare", 1000, 4000); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := sys.DrainNode(100, 0); err != nil {
		t.Fatalf("DrainNode: %v", err)
	}
	if err := sys.RunUntilDrained(600); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rescues := 0
	for _, r := range sys.JobResults() {
		if !r.Completed {
			t.Fatalf("%s incomplete through churn", r.Name)
		}
		rescues += r.Rescues
	}
	if rescues == 0 {
		t.Fatal("failure produced no rescues")
	}
}

func TestSystemMetrics(t *testing.T) {
	sys, err := NewSystem(
		WithUniformCluster(2, 3000, 4096),
		WithControlCycle(60),
		WithDynamicPlacement(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if m := sys.Metrics(); m != (SystemMetrics{}) {
		t.Fatalf("metrics before run = %+v", m)
	}
	if err := sys.SubmitJob(JobSpec{
		Name: "j", WorkMcycles: 60000, MaxSpeedMHz: 3000, MemoryMB: 100, Deadline: 600,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(300); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	// Cycles at 0, 60, ..., 300; a System never restarts or replays.
	if m.UptimeCycles == 0 || m.Restarts != 0 || m.ReplayDurationSeconds != 0 {
		t.Fatalf("metrics after run = %+v", m)
	}
}
