// Batch farm: a render farm compares the three scheduling policies on
// the same deadline-driven workload — non-preemptive FCFS (the common
// commercial default), preemptive EDF, and the utility-driven placement
// controller. The interesting output is not just how many frames meet
// their deadlines but how the pain is distributed when they cannot.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dynplace"
)

func main() {
	fmt.Println("policy  on-time  changes   worst-miss[s]  median-dist[s]")
	fmt.Println("------  -------  -------   -------------  --------------")
	for _, policy := range []string{"fcfs", "edf", "apc"} {
		onTime, changes, worst, median := run(policy)
		fmt.Printf("%-6s  %6.1f%%  %7d   %13.0f  %14.0f\n",
			policy, 100*onTime, changes, worst, median)
	}
}

func run(policy string) (onTime float64, changes int, worst, median float64) {
	sys, err := dynplace.NewSystem(
		dynplace.WithUniformCluster(8, 15600, 16384),
		dynplace.WithControlCycle(300),
		dynplace.WithPolicy(policy),
		dynplace.WithFreePlacementActions(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 120 render batches: mostly short previews with tight deadlines,
	// some long final-quality passes with loose ones.
	rng := rand.New(rand.NewSource(7))
	t := 0.0
	for i := 0; i < 160; i++ {
		t += rng.ExpFloat64() * 110
		preview := rng.Float64() < 0.6
		var spec dynplace.JobSpec
		if preview {
			spec = dynplace.JobSpec{
				Name:        fmt.Sprintf("preview-%03d", i),
				WorkMcycles: 2340 * 900, // 15 min at full speed
				MaxSpeedMHz: 2340,
				MemoryMB:    4320,
				Submit:      t,
				Deadline:    t + 1.4*900, // factor 1.4
			}
		} else {
			spec = dynplace.JobSpec{
				Name:        fmt.Sprintf("final-%03d", i),
				WorkMcycles: 3900 * 7200, // 2 h at full speed
				MaxSpeedMHz: 3900,
				MemoryMB:    4320,
				Submit:      t,
				Deadline:    t + 3*7200, // factor 3
			}
		}
		if err := sys.SubmitJob(spec); err != nil {
			log.Fatal(err)
		}
	}

	if err := sys.RunUntilDrained(5e6); err != nil {
		log.Fatal(err)
	}

	dists := make([]float64, 0, 160)
	worst = math.Inf(1)
	for _, r := range sys.JobResults() {
		dists = append(dists, r.DistanceToGoal)
		if r.DistanceToGoal < worst {
			worst = r.DistanceToGoal
		}
	}
	sortFloats(dists)
	return sys.OnTimeRate(), sys.PlacementChanges(), worst, dists[len(dists)/2]
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
