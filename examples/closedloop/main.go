// Closed loop: the full pipeline the paper's architecture diagram
// describes, driven end to end. The work profiler estimates the web
// application's per-request CPU demand by regressing observed node
// consumption on observed throughput; the job workload profiler
// estimates a batch job's stage profile from recorded runs; both
// estimates — not ground truth — parameterize the placement controller.
// The request router then distributes traffic in proportion to the
// controller's allocations.
//
// This example uses the library's internal building blocks directly
// (profilers and router) alongside the public API, mirroring how the
// components compose in the paper's system.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynplace"
	"dynplace/internal/jobprof"
	"dynplace/internal/profiler"
	"dynplace/internal/router"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// --- 1. Work profiler: estimate per-request CPU demand. ---
	// Ground truth (unknown to the controller): 150 Mcycles/request on
	// top of a 400 MHz idle load.
	est, err := profiler.New([]string{"search"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tput := 20 + rng.Float64()*120
		est.Observe(profiler.Sample{
			UsedCPUMHz: 400 + 150*tput + rng.NormFloat64()*80,
			Throughput: map[string]float64{"search": tput},
		})
	}
	demands, base, err := est.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("work profiler: demand ≈ %.1f Mcycles/request (truth 150), idle ≈ %.0f MHz\n",
		demands["search"], base)

	// --- 2. Job profiler: estimate a stage profile from two runs. ---
	mkRun := func() jobprof.Run {
		var run jobprof.Run
		for t := 0.0; t <= 2400; t += 30 {
			cpu, mem := 3600.0, 2000.0 // crunch stage
			if t > 1800 {
				cpu, mem = 1200, 6000 // merge stage
			}
			run = append(run, jobprof.Observation{
				T: t, CPUMHz: cpu + rng.NormFloat64()*120, MemoryMB: mem,
			})
		}
		return run
	}
	var jp jobprof.Profiler
	stages, used, err := jp.Estimate([]jobprof.Run{mkRun(), mkRun(), mkRun()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job profiler: %d stages from %d runs; stage works ≈ %.0f / %.0f Mcycles\n\n",
		len(stages), used, stages[0].WorkMcycles, stages[1].WorkMcycles)

	// --- 3. Drive the placement controller with the estimates. ---
	sys, err := dynplace.NewSystem(
		dynplace.WithUniformCluster(4, 15600, 16384),
		dynplace.WithControlCycle(300),
		dynplace.WithDynamicPlacement(),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddWebApp(dynplace.WebAppSpec{
		Name:             "search",
		ArrivalRate:      90,
		DemandPerRequest: demands["search"], // estimated, not truth
		BaseLatency:      0.03,
		GoalResponseTime: 0.2,
		MaxPowerMHz:      25000,
		MemoryMB:         1500,
	}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sys.SubmitJob(dynplace.JobSpec{
			Name: fmt.Sprintf("profiled-%d", i),
			Stages: []dynplace.Stage{
				{WorkMcycles: stages[0].WorkMcycles, MaxSpeedMHz: stages[0].MaxSpeedMHz,
					MemoryMB: stages[0].MemoryMB},
				{WorkMcycles: stages[1].WorkMcycles, MaxSpeedMHz: stages[1].MaxSpeedMHz,
					MemoryMB: stages[1].MemoryMB},
			},
			Submit:   float64(i) * 600,
			Deadline: float64(i)*600 + 3*2400,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.RunUntilDrained(48 * 3600); err != nil {
		log.Fatal(err)
	}
	for _, r := range sys.JobResults() {
		fmt.Printf("%s: completed %.0f s, goal met: %v\n", r.Name, r.CompletedAt, r.MetGoal)
	}

	// --- 4. Route traffic in proportion to the final allocation. ---
	rt := router.New(64)
	alloc := sys.WebAllocationSeries("search")
	final := alloc[len(alloc)-1].Value
	// In the real system the per-node split comes from the load matrix;
	// here we illustrate with a 60/40 split of the final allocation.
	rt.Update("search", []router.Instance{
		{Node: "node-0", PowerMHz: 0.6 * final},
		{Node: "node-1", PowerMHz: 0.4 * final},
	})
	for i := 0; i < 10000; i++ {
		if _, err := rt.Dispatch("search", rng.Float64()); err != nil {
			log.Fatal(err)
		}
	}
	stats, _ := rt.StatsFor("search")
	fmt.Printf("\nrouter: %d requests dispatched, per node: %v\n",
		stats.Dispatched, stats.PerNode)
}
