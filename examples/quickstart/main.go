// Quickstart: one web application and three batch jobs sharing a small
// cluster under dynamic placement. Prints the placement controller's
// allocation decisions and every job's outcome.
package main

import (
	"fmt"
	"log"

	"dynplace"
)

func main() {
	// Four nodes: 4×3.9 GHz processors and 16 GB each.
	sys, err := dynplace.NewSystem(
		dynplace.WithUniformCluster(4, 15600, 16384),
		dynplace.WithControlCycle(300),
		dynplace.WithDynamicPlacement(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A storefront with a 250 ms response-time goal.
	if err := sys.AddWebApp(dynplace.WebAppSpec{
		Name:             "storefront",
		ArrivalRate:      100,  // requests/s
		DemandPerRequest: 120,  // megacycles per request
		BaseLatency:      0.04, // seconds
		GoalResponseTime: 0.25, // seconds
		MaxPowerMHz:      30000,
		MemoryMB:         2000,
	}); err != nil {
		log.Fatal(err)
	}

	// Three batch jobs with different deadlines.
	jobs := []dynplace.JobSpec{
		{Name: "etl-hourly", WorkMcycles: 3900 * 1200, MaxSpeedMHz: 3900,
			MemoryMB: 4000, Submit: 0, Deadline: 3 * 3600},
		{Name: "ml-training", WorkMcycles: 3900 * 5400, MaxSpeedMHz: 3900,
			MemoryMB: 6000, Submit: 600, Deadline: 8 * 3600},
		{Name: "nightly-report", WorkMcycles: 2000 * 1800, MaxSpeedMHz: 2000,
			MemoryMB: 3000, Submit: 1200, Deadline: 4 * 3600},
	}
	for _, j := range jobs {
		if err := sys.SubmitJob(j); err != nil {
			log.Fatal(err)
		}
	}

	if err := sys.RunUntilDrained(24 * 3600); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Job outcomes")
	for _, r := range sys.JobResults() {
		status := "MISSED"
		if r.MetGoal {
			status = "met"
		}
		fmt.Printf("%-15s completed at %7.0f s  goal %s by %6.0f s  (utility %.2f, suspends %d)\n",
			r.Name, r.CompletedAt, status, r.DistanceToGoal, r.Utility, r.Suspends)
	}

	fmt.Println("\n== Storefront over time")
	util := sys.WebUtilitySeries("storefront")
	alloc := sys.WebAllocationSeries("storefront")
	for i := 0; i < len(util) && i < 8; i++ {
		fmt.Printf("t=%6.0f s  relative performance %.3f  allocation %6.0f MHz\n",
			util[i].Time, util[i].Value, alloc[i].Value)
	}
	fmt.Printf("\nplacement changes: %d, on-time rate: %.0f%%\n",
		sys.PlacementChanges(), 100*sys.OnTimeRate())
}
