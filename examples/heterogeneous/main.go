// Heterogeneous consolidation: the Experiment Three question at example
// scale. A web workload and a stream of batch jobs can either get fixed
// hardware partitions — the common datacenter practice the paper argues
// against — or share every node under dynamic placement. The run prints
// both workloads' relative performance under each regime so the cost of
// static partitioning is visible directly.
package main

import (
	"fmt"
	"log"

	"dynplace"
)

func main() {
	fmt.Println("== Dynamic sharing (placement controller)")
	report(build(true))

	fmt.Println("\n== Static partition (3 web nodes, 5 batch nodes, FCFS)")
	report(build(false))
}

func build(dynamic bool) *dynplace.System {
	opts := []dynplace.Option{
		dynplace.WithUniformCluster(8, 15600, 16384),
		dynplace.WithControlCycle(600),
	}
	if dynamic {
		opts = append(opts, dynplace.WithDynamicPlacement())
	} else {
		opts = append(opts,
			dynplace.WithPolicy("fcfs"),
			dynplace.WithStaticWebPartition(0, 1, 2))
	}
	sys, err := dynplace.NewSystem(opts...)
	if err != nil {
		log.Fatal(err)
	}

	// Analytics portal: needs about 2.5 nodes' worth of CPU at peak.
	if err := sys.AddWebApp(dynplace.WebAppSpec{
		Name:             "portal",
		ArrivalRate:      55,
		DemandPerRequest: 480,
		BaseLatency:      0.032,
		GoalResponseTime: 0.12,
		MaxPowerMHz:      60000,
		MemoryMB:         2000,
	}); err != nil {
		log.Fatal(err)
	}

	// A burst of batch jobs overloads the farm in the first half of the
	// run: more work than the static batch partition can possibly chew.
	for i := 0; i < 60; i++ {
		if err := sys.SubmitJob(dynplace.JobSpec{
			Name:        fmt.Sprintf("job-%02d", i),
			WorkMcycles: 3900 * 3000,
			MaxSpeedMHz: 3900,
			MemoryMB:    4320,
			Submit:      float64(i) * 150,
			Deadline:    float64(i)*150 + 2.0*3000,
		}); err != nil {
			log.Fatal(err)
		}
	}

	if err := sys.Run(40000); err != nil {
		log.Fatal(err)
	}
	return sys
}

func report(sys *dynplace.System) {
	webU := sys.WebUtilitySeries("portal")
	batchU := sys.BatchUtilitySeries()
	for i := 0; i < len(webU); i += 5 {
		var bu float64
		has := false
		for _, p := range batchU {
			if p.Time <= webU[i].Time {
				bu = p.Value
				has = true
			}
		}
		line := fmt.Sprintf("t=%6.0f  web %+.3f", webU[i].Time, webU[i].Value)
		if has {
			line += fmt.Sprintf("  batch %+.3f", bu)
		}
		fmt.Println(line)
	}
	fmt.Printf("batch jobs on time: %.0f%%, placement changes: %d\n",
		100*sys.OnTimeRate(), sys.PlacementChanges())
}
