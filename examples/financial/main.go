// Financial services scenario — the paper's motivating mix. A stock
// trading application serves interactive traffic all day, spiking at the
// market open and close. Portfolio-analysis batch jobs are submitted at
// the close and must finish before the next open. With static
// partitioning the firm would need separate hardware for each workload;
// dynamic placement moves CPU to the trading front-end during spikes and
// hands the night to the analysts — on the same sixteen machines.
package main

import (
	"fmt"
	"log"

	"dynplace"
)

const hour = 3600.0

func main() {
	sys, err := dynplace.NewSystem(
		dynplace.WithUniformCluster(16, 15600, 16384),
		dynplace.WithControlCycle(600),
		dynplace.WithDynamicPlacement(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Trading front-end: 100 ms goal, λ varying through the day.
	// t=0 is 06:00; market opens 09:30 (t=3.5h), closes 16:00 (t=10h).
	if err := sys.AddWebApp(dynplace.WebAppSpec{
		Name:             "trading",
		ArrivalRate:      40, // pre-open trickle
		DemandPerRequest: 350,
		BaseLatency:      0.025,
		GoalResponseTime: 0.100,
		MaxPowerMHz:      180000,
		MemoryMB:         2000,
		LoadSchedule: []dynplace.LoadPhase{
			{Start: 3.5 * hour, ArrivalRate: 320}, // opening auction spike
			{Start: 4.5 * hour, ArrivalRate: 180}, // steady session
			{Start: 9.5 * hour, ArrivalRate: 330}, // closing spike
			{Start: 10.5 * hour, ArrivalRate: 30}, // after hours
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Portfolio analyses land right after the close (t=10h) and must be
	// ready before the next open (t=27.5h → 17.5 h window).
	nextOpen := 27.5 * hour
	for i := 0; i < 40; i++ {
		submit := 10*hour + float64(i)*120
		if err := sys.SubmitJob(dynplace.JobSpec{
			Name:        fmt.Sprintf("portfolio-%02d", i),
			WorkMcycles: 3900 * 4 * hour, // 4 h at full speed
			MaxSpeedMHz: 3900,
			MemoryMB:    4320,
			Submit:      submit,
			Deadline:    nextOpen,
		}); err != nil {
			log.Fatal(err)
		}
	}

	if err := sys.Run(28 * hour); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Trading app through the day (relative performance and CPU)")
	util := sys.WebUtilitySeries("trading")
	alloc := sys.WebAllocationSeries("trading")
	batch := sys.BatchAllocationSeries()
	for i := 0; i < len(util); i += 6 {
		var b float64
		if i < len(batch) {
			b = batch[i].Value
		}
		fmt.Printf("t=%5.1f h  trading u=%+.3f  trading %6.0f MHz  batch %6.0f MHz\n",
			util[i].Time/hour, util[i].Value, alloc[i].Value, b)
	}

	met, total := 0, 0
	for _, r := range sys.JobResults() {
		total++
		if r.MetGoal {
			met++
		}
	}
	fmt.Printf("\nportfolio jobs ready for the open: %d/%d, placement changes: %d\n",
		met, total, sys.PlacementChanges())
}
