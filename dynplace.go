package dynplace

import (
	"errors"
	"fmt"

	"dynplace/internal/cluster"
	"dynplace/internal/control"
	"dynplace/internal/metrics"
	"dynplace/internal/scheduler"
)

// System is a simulated cluster under integrated workload management.
// Configure it with options, register workloads, then Run. A System is
// not safe for concurrent use.
type System struct {
	cfg     control.Config
	runner  *control.Runner
	webIdx  map[string]int
	jobSeen map[string]bool
	started bool
}

// ErrStarted reports a configuration change after the simulation began.
var ErrStarted = errors.New("dynplace: system already started")

// NewSystem builds a system from the given options.
func NewSystem(opts ...Option) (*System, error) {
	var s settings
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return nil, err
		}
	}
	cfg, err := s.build()
	if err != nil {
		return nil, err
	}
	return &System{
		cfg:     cfg,
		webIdx:  make(map[string]int),
		jobSeen: make(map[string]bool),
	}, nil
}

// AddWebApp registers a transactional application. All web applications
// must be added before the first Run.
func (s *System) AddWebApp(spec WebAppSpec) error {
	if s.started {
		return ErrStarted
	}
	if _, dup := s.webIdx[spec.Name]; dup {
		return fmt.Errorf("%w: duplicate web app %q", ErrBadSpec, spec.Name)
	}
	app, err := spec.toInternal()
	if err != nil {
		return err
	}
	s.webIdx[spec.Name] = len(s.cfg.WebApps)
	s.cfg.WebApps = append(s.cfg.WebApps, app)
	phases := make([]control.LoadPhase, len(spec.LoadSchedule))
	for i, ph := range spec.LoadSchedule {
		phases[i] = control.LoadPhase{Start: ph.Start, ArrivalRate: ph.ArrivalRate}
	}
	s.cfg.WebLoad = append(s.cfg.WebLoad, phases)
	return nil
}

// SubmitJob registers a batch job for arrival at its submit time. Jobs
// must be submitted before the first Run.
func (s *System) SubmitJob(spec JobSpec) error {
	if s.started {
		return ErrStarted
	}
	if s.jobSeen[spec.Name] {
		return fmt.Errorf("%w: duplicate job %q", ErrBadSpec, spec.Name)
	}
	internal, err := spec.toInternal()
	if err != nil {
		return err
	}
	if err := s.ensureRunner(); err != nil {
		return err
	}
	if err := s.runner.Submit(internal); err != nil {
		return err
	}
	s.jobSeen[spec.Name] = true
	return nil
}

// SubmitParallelJob splits a job into shards independent sub-jobs that
// the controller places separately — simple fork-join parallelism, the
// paper's "explicit support for parallel jobs" future-work item. Work is
// divided evenly; every shard inherits the deadline, so the job as a
// whole meets its goal iff all shards do. Shard names append "#k" to the
// job name. Multi-stage specs split each stage's work evenly.
func (s *System) SubmitParallelJob(spec JobSpec, shards int) error {
	if shards <= 0 {
		return fmt.Errorf("%w: shards must be positive", ErrBadSpec)
	}
	if shards == 1 {
		return s.SubmitJob(spec)
	}
	for k := 0; k < shards; k++ {
		shard := spec
		shard.Name = fmt.Sprintf("%s#%d", spec.Name, k)
		shard.WorkMcycles = spec.WorkMcycles / float64(shards)
		if len(spec.Stages) > 0 {
			shard.Stages = make([]Stage, len(spec.Stages))
			copy(shard.Stages, spec.Stages)
			for i := range shard.Stages {
				shard.Stages[i].WorkMcycles /= float64(shards)
			}
		}
		if err := s.SubmitJob(shard); err != nil {
			return err
		}
	}
	return nil
}

// FailNode schedules a node failure at virtual time at: the node's
// capacity disappears and its jobs are suspended (progress preserved).
// Under dynamic placement the displaced jobs are rescued onto surviving
// nodes at the next cycle, counted in JobResult.Rescues.
func (s *System) FailNode(at float64, node int) error {
	if err := s.ensureRunner(); err != nil {
		return err
	}
	return s.runner.FailNode(at, cluster.NodeID(node))
}

// AddNode schedules a node joining the cluster at virtual time at; its
// capacity is offered to the placement optimizer from the next control
// cycle on. Dynamic placement mode only.
func (s *System) AddNode(at float64, name string, cpuMHz, memMB float64) error {
	if err := s.ensureRunner(); err != nil {
		return err
	}
	return s.runner.AddNode(at, cluster.Node{Name: name, CPUMHz: cpuMHz, MemMB: memMB})
}

// DrainNode schedules a graceful node departure at virtual time at: the
// node stops receiving placements and its work is live-migrated off at
// the next cycle, with no lost progress. Dynamic placement mode only.
func (s *System) DrainNode(at float64, node int) error {
	if err := s.ensureRunner(); err != nil {
		return err
	}
	return s.runner.DrainNode(at, cluster.NodeID(node))
}

func (s *System) ensureRunner() error {
	if s.runner != nil {
		return nil
	}
	r, err := control.NewRunner(s.cfg)
	if err != nil {
		return err
	}
	s.runner = r
	return nil
}

// Run executes control cycles until the horizon (virtual seconds). It
// may be called repeatedly with growing horizons.
func (s *System) Run(horizon float64) error {
	if err := s.ensureRunner(); err != nil {
		return err
	}
	s.started = true
	return s.runner.Run(horizon)
}

// RunUntilDrained executes until every submitted job completes, bounded
// by the guard horizon.
func (s *System) RunUntilDrained(maxHorizon float64) error {
	if err := s.ensureRunner(); err != nil {
		return err
	}
	s.started = true
	return s.runner.RunUntilDrained(maxHorizon)
}

// Now returns the current virtual time in seconds.
func (s *System) Now() float64 {
	if s.runner == nil {
		return 0
	}
	return s.runner.Now()
}

// JobResults reports the outcome of every submitted job, in submission
// registration order.
func (s *System) JobResults() []JobResult {
	if s.runner == nil {
		return nil
	}
	jobs := s.runner.Jobs()
	out := make([]JobResult, 0, len(jobs))
	for _, j := range jobs {
		r := JobResult{
			Name:       j.Spec.Name,
			Completed:  j.Status == scheduler.Completed,
			Suspends:   j.Suspends,
			Resumes:    j.Resumes,
			Migrations: j.Migrations,
			Rescues:    j.Rescues,
		}
		if r.Completed {
			r.CompletedAt = j.CompletedAt
			r.MetGoal = j.MetGoal()
			r.DistanceToGoal = j.DistanceToGoal()
			r.Utility = j.Spec.UtilityAtCompletion(j.CompletedAt)
		}
		out = append(out, r)
	}
	return out
}

// OnTimeRate returns the fraction of submitted jobs that completed by
// their deadlines.
func (s *System) OnTimeRate() float64 {
	if s.runner == nil {
		return 0
	}
	return s.runner.OnTimeRate()
}

// PlacementChanges returns the number of disruptive placement actions
// (suspends, resumes, migrations) performed so far.
func (s *System) PlacementChanges() int {
	if s.runner == nil {
		return 0
	}
	return s.runner.TotalChanges()
}

// BatchUtilitySeries returns the mean hypothetical relative performance
// of the batch workload, sampled each control cycle.
func (s *System) BatchUtilitySeries() []Point {
	if s.runner == nil {
		return nil
	}
	return convertPoints(s.runner.HypotheticalUtility().Points())
}

// BatchAllocationSeries returns the aggregate CPU (MHz) allocated to
// batch work, sampled each control cycle.
func (s *System) BatchAllocationSeries() []Point {
	if s.runner == nil {
		return nil
	}
	return convertPoints(s.runner.BatchAllocation().Points())
}

// WebUtilitySeries returns the named web application's relative
// performance over time.
func (s *System) WebUtilitySeries(app string) []Point {
	idx, ok := s.webIdx[app]
	if !ok || s.runner == nil {
		return nil
	}
	return convertPoints(s.runner.WebUtility(idx).Points())
}

// WebAllocationSeries returns the named web application's CPU allocation
// (MHz) over time.
func (s *System) WebAllocationSeries(app string) []Point {
	idx, ok := s.webIdx[app]
	if !ok || s.runner == nil {
		return nil
	}
	return convertPoints(s.runner.WebAllocation(idx).Points())
}

// QueueLengthSeries returns the number of jobs waiting (queued or
// suspended) at each control cycle.
func (s *System) QueueLengthSeries() []Point {
	if s.runner == nil {
		return nil
	}
	return convertPoints(s.runner.QueueLength().Points())
}

// CompletionUtilities returns (completion time, relative performance)
// samples for completed jobs.
func (s *System) CompletionUtilities() []Point {
	if s.runner == nil {
		return nil
	}
	return convertPoints(s.runner.CompletionUtilities())
}

func convertPoints(in []metrics.Point) []Point {
	out := make([]Point, len(in))
	for i, p := range in {
		out[i] = Point{Time: p.T, Value: p.V}
	}
	return out
}

// SystemMetrics is the durability-and-uptime gauge set shared by the
// simulated System and the live daemon's /metrics payload (the daemon
// inlines these fields in its metrics and state views, under the same
// JSON names). For a System — which lives and dies with one process —
// Restarts and ReplayDurationSeconds are always zero; the dynplaced
// daemon reports its real crash-recovery trajectory through them.
type SystemMetrics struct {
	// UptimeCycles counts control cycles executed by this process (for
	// a System, all cycles ever run).
	UptimeCycles int64 `json:"uptimeCycles"`
	// Restarts counts recoveries from the durable state store that
	// preceded this process's state.
	Restarts int `json:"restarts"`
	// ReplayDurationSeconds is how long the last snapshot+WAL replay
	// took (wall-clock seconds).
	ReplayDurationSeconds float64 `json:"replayDurationSeconds"`
}

// Metrics reports the system's lifetime gauges.
func (s *System) Metrics() SystemMetrics {
	if s.runner == nil {
		return SystemMetrics{}
	}
	return SystemMetrics{UptimeCycles: s.runner.Cycles()}
}
