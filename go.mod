module dynplace

go 1.23
