module dynplace

go 1.24
