package dynplace

import (
	"errors"
	"fmt"

	"dynplace/internal/batch"
	"dynplace/internal/txn"
)

// Stage is one phase of a multi-stage job profile.
type Stage struct {
	// WorkMcycles is the CPU work of the stage in megacycles (MHz·s).
	WorkMcycles float64 `json:"workMcycles"`
	// MaxSpeedMHz caps how fast the stage can execute.
	MaxSpeedMHz float64 `json:"maxSpeedMHz"`
	// MinSpeedMHz is the slowest the stage may run whenever it runs
	// (0 = no floor).
	MinSpeedMHz float64 `json:"minSpeedMHz,omitempty"`
	// MemoryMB is the stage's memory footprint.
	MemoryMB float64 `json:"memoryMB"`
}

// JobSpec describes a batch job and its completion-time goal. For
// single-stage jobs fill WorkMcycles/MaxSpeedMHz/MemoryMB; multi-stage
// profiles use Stages instead.
type JobSpec struct {
	// Name identifies the job; it must be unique within a System.
	Name string `json:"name"`

	// WorkMcycles, MaxSpeedMHz and MemoryMB describe a single-stage job.
	// Ignored when Stages is set.
	WorkMcycles float64 `json:"workMcycles,omitempty"`
	MaxSpeedMHz float64 `json:"maxSpeedMHz,omitempty"`
	MemoryMB    float64 `json:"memoryMB,omitempty"`

	// Stages is the multi-stage resource usage profile (optional).
	Stages []Stage `json:"stages,omitempty"`

	// Submit is the submission time in seconds of virtual time.
	Submit float64 `json:"submit,omitempty"`
	// DesiredStart is the earliest desired start (default: Submit).
	DesiredStart float64 `json:"desiredStart,omitempty"`
	// Deadline is the completion-time goal τ.
	Deadline float64 `json:"deadline"`
	// AntiCollocate lists application names (jobs or web apps) this job
	// must never share a node with.
	AntiCollocate []string `json:"antiCollocate,omitempty"`
}

// ErrBadSpec reports an invalid job or web application specification.
var ErrBadSpec = errors.New("dynplace: invalid specification")

// toInternal converts and validates the spec.
func (j JobSpec) toInternal() (*batch.Spec, error) {
	spec := &batch.Spec{
		Name:          j.Name,
		Submit:        j.Submit,
		DesiredStart:  j.DesiredStart,
		Deadline:      j.Deadline,
		AntiCollocate: append([]string(nil), j.AntiCollocate...),
	}
	if spec.DesiredStart == 0 {
		spec.DesiredStart = j.Submit
	}
	if len(j.Stages) > 0 {
		spec.Stages = make([]batch.Stage, len(j.Stages))
		for i, s := range j.Stages {
			spec.Stages[i] = batch.Stage{
				WorkMcycles: s.WorkMcycles,
				MaxSpeedMHz: s.MaxSpeedMHz,
				MinSpeedMHz: s.MinSpeedMHz,
				MemoryMB:    s.MemoryMB,
			}
		}
	} else {
		spec.Stages = []batch.Stage{{
			WorkMcycles: j.WorkMcycles,
			MaxSpeedMHz: j.MaxSpeedMHz,
			MemoryMB:    j.MemoryMB,
		}}
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	return spec, nil
}

// WebAppSpec describes a transactional application and its response-time
// goal. The performance model is the paper's open queueing system: mean
// response time t(ω) = BaseLatency + DemandPerRequest/(ω − λ·c) under an
// aggregate CPU allocation of ω MHz.
type WebAppSpec struct {
	// Name identifies the application; unique within a System.
	Name string `json:"name"`
	// ArrivalRate is λ, requests per second.
	ArrivalRate float64 `json:"arrivalRate"`
	// DemandPerRequest is c, the average CPU demand of one request in
	// megacycles.
	DemandPerRequest float64 `json:"demandPerRequest"`
	// BaseLatency is the CPU-independent response-time floor in seconds.
	BaseLatency float64 `json:"baseLatency,omitempty"`
	// GoalResponseTime is the SLA target τ in seconds.
	GoalResponseTime float64 `json:"goalResponseTime"`
	// MaxPowerMHz caps the useful aggregate allocation (0 = unbounded).
	MaxPowerMHz float64 `json:"maxPowerMHz,omitempty"`
	// MemoryMB is the per-instance footprint.
	MemoryMB float64 `json:"memoryMB"`
	// LoadSchedule optionally varies the arrival rate over time: each
	// phase takes effect at its start time (phases should be listed in
	// ascending start order). The placement controller reacts at the
	// next control cycle.
	LoadSchedule []LoadPhase `json:"loadSchedule,omitempty"`
	// AntiCollocate lists application names this one must never share a
	// node with.
	AntiCollocate []string `json:"antiCollocate,omitempty"`
	// GoalPercentile, when nonzero, makes GoalResponseTime a percentile
	// target (e.g. 95 = "95th percentile below the goal") instead of a
	// mean. Valid range (50, 100).
	GoalPercentile float64 `json:"goalPercentile,omitempty"`
}

// LoadPhase changes a web application's arrival rate at a point in time.
type LoadPhase struct {
	// Start is the phase's begin time (virtual seconds).
	Start float64 `json:"start"`
	// ArrivalRate is λ from Start onward (requests/second).
	ArrivalRate float64 `json:"arrivalRate"`
}

func (w WebAppSpec) toInternal() (*txn.App, error) {
	app := &txn.App{
		Name:             w.Name,
		ArrivalRate:      w.ArrivalRate,
		DemandPerRequest: w.DemandPerRequest,
		BaseLatency:      w.BaseLatency,
		GoalResponseTime: w.GoalResponseTime,
		MaxPowerMHz:      w.MaxPowerMHz,
		MemoryMB:         w.MemoryMB,
		AntiCollocate:    append([]string(nil), w.AntiCollocate...),
		GoalPercentile:   w.GoalPercentile,
	}
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	return app, nil
}

// JobResult reports one job's outcome.
type JobResult struct {
	// Name is the job's identifier.
	Name string `json:"name"`
	// Completed reports whether the job finished within the run.
	Completed bool `json:"completed"`
	// CompletedAt is the completion instant (valid when Completed).
	CompletedAt float64 `json:"completedAt"`
	// MetGoal reports completion at or before the deadline.
	MetGoal bool `json:"metGoal"`
	// DistanceToGoal is deadline − completion (positive = early). Zero
	// is meaningful (finished exactly on time), so no omitempty.
	DistanceToGoal float64 `json:"distanceToGoal"`
	// Utility is the relative performance at completion:
	// (deadline − completion) / (deadline − desired start).
	Utility float64 `json:"utility"`
	// Suspends, Resumes and Migrations count the placement actions the
	// job experienced. Rescues counts involuntary re-placements after a
	// node failure; rescues are excluded from the voluntary
	// placement-change metric.
	Suspends   int `json:"suspends"`
	Resumes    int `json:"resumes"`
	Migrations int `json:"migrations"`
	Rescues    int `json:"rescues"`
}

// Point is one (virtual time, value) sample of a recorded series.
type Point struct {
	// Time is the sample instant in seconds of virtual time.
	Time float64 `json:"time"`
	// Value is the sampled quantity.
	Value float64 `json:"value"`
}

// CompileJob validates spec and lowers it to the internal batch
// representation. It is the seam through which the live daemon
// (internal/daemon) shares spec validation and conversion with the
// simulator entry points; library users never need it.
func CompileJob(spec JobSpec) (*batch.Spec, error) { return spec.toInternal() }

// CompileWebApp validates spec and lowers it to the internal
// transactional model. See CompileJob.
func CompileWebApp(spec WebAppSpec) (*txn.App, error) { return spec.toInternal() }
