package main

import (
	"strings"
	"testing"

	"dynplace/internal/trace"
)

func TestGenerateExp1(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"-workload", "exp1", "-jobs", "12"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	specs, err := trace.ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(specs) != 12 {
		t.Fatalf("jobs = %d, want 12", len(specs))
	}
	if specs[0].Stages[0].WorkMcycles != 68640000 {
		t.Fatalf("work = %v, want Table 2's 68640000", specs[0].Stages[0].WorkMcycles)
	}
}

func TestGenerateExp2(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"-workload", "exp2", "-jobs", "30", "-interarrival", "100"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	specs, err := trace.ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(specs) != 30 {
		t.Fatalf("jobs = %d, want 30", len(specs))
	}
}

func TestGenerateExp3(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"-workload", "exp3", "-heavy", "10", "-light", "5"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	specs, err := trace.ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(specs) != 15 {
		t.Fatalf("jobs = %d, want 15", len(specs))
	}
}

func TestRejectsUnknownWorkload(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"-workload", "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
