package main

import (
	"strings"
	"testing"

	"dynplace/internal/trace"
)

func TestGenerateExp1(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"-workload", "exp1", "-jobs", "12"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	specs, err := trace.ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(specs) != 12 {
		t.Fatalf("jobs = %d, want 12", len(specs))
	}
	if specs[0].Stages[0].WorkMcycles != 68640000 {
		t.Fatalf("work = %v, want Table 2's 68640000", specs[0].Stages[0].WorkMcycles)
	}
}

func TestGenerateExp2(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"-workload", "exp2", "-jobs", "30", "-interarrival", "100"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	specs, err := trace.ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(specs) != 30 {
		t.Fatalf("jobs = %d, want 30", len(specs))
	}
}

func TestGenerateExp3(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"-workload", "exp3", "-heavy", "10", "-light", "5"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	specs, err := trace.ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(specs) != 15 {
		t.Fatalf("jobs = %d, want 15", len(specs))
	}
}

func TestRejectsUnknownWorkload(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"-workload", "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestGenerateReplay(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"-workload", "replay", "-apps", "2",
		"-season", "3600", "-seasons", "1", "-slot", "300", "-replay-jobs", "8"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	tr, err := trace.ParseReplay(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParseReplay: %v", err)
	}
	if tr.SeasonSeconds != 3600 {
		t.Errorf("season = %g, want 3600", tr.SeasonSeconds)
	}
	if len(tr.Apps) != 2 || len(tr.Jobs) != 8 {
		t.Errorf("apps = %d jobs = %d, want 2 and 8", len(tr.Apps), len(tr.Jobs))
	}
	// 1 season / 300s slots, first sample at t=300: 11 slots x 2 apps.
	if len(tr.Loads) != 22 {
		t.Errorf("loads = %d, want 22", len(tr.Loads))
	}
	// The emitted trace must survive a round-trip unchanged: replaying
	// a file regenerated from the parse is the reproducibility story.
	var again strings.Builder
	if err := trace.EncodeReplay(&again, tr); err != nil {
		t.Fatalf("EncodeReplay: %v", err)
	}
	if again.String() != buf.String() {
		t.Error("encode(parse(trace)) is not a fixpoint")
	}
}

func TestGenerateReplayDeterministic(t *testing.T) {
	gen := func() string {
		t.Helper()
		var buf strings.Builder
		if err := run(&buf, []string{"-workload", "replay", "-seasons", "1", "-season", "7200"}); err != nil {
			t.Fatalf("run: %v", err)
		}
		return buf.String()
	}
	if gen() != gen() {
		t.Error("same seed produced different replay traces")
	}
}
