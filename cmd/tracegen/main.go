// Command tracegen generates reproducible job traces as JSON, suitable
// for feeding experiments or external tooling.
//
// Usage:
//
//	tracegen -workload exp1 -jobs 800 -seed 1 > exp1.json
//	tracegen -workload exp2 -jobs 800 -interarrival 100 > exp2.json
//	tracegen -workload exp3 > exp3.json
//
// The replay workload emits a full mixed-workload replay trace in the
// line-oriented replay format instead of job JSON: web applications
// with staggered diurnal arrival-rate waves, the timestamped load
// events that move them, and batch jobs arriving in bursts in the
// demand valleys (see internal/trace.ParseReplay for the format):
//
//	tracegen -workload replay -apps 3 -seasons 2 -seed 1 > diurnal.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynplace/internal/batch"
	"dynplace/internal/trace"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		workload     = fs.String("workload", "exp1", "workload family: exp1, exp2, exp3")
		jobs         = fs.Int("jobs", 800, "number of jobs (exp1, exp2)")
		interarrival = fs.Float64("interarrival", 260, "mean inter-arrival seconds (exp1, exp2)")
		heavy        = fs.Int("heavy", 200, "heavy-phase jobs (exp3)")
		light        = fs.Int("light", 40, "light-phase jobs (exp3)")
		heavyInter   = fs.Float64("heavy-interarrival", 180, "heavy-phase inter-arrival (exp3)")
		lightInter   = fs.Float64("light-interarrival", 600, "light-phase inter-arrival (exp3)")
		seed         = fs.Int64("seed", 1, "random seed")
		apps         = fs.Int("apps", 3, "web applications (replay)")
		season       = fs.Float64("season", 86400, "diurnal period in seconds (replay)")
		seasons      = fs.Int("seasons", 2, "periods the trace covers (replay)")
		slot         = fs.Float64("slot", 300, "load-sampling interval in seconds (replay)")
		baseRate     = fs.Float64("base-rate", 0, "diurnal valley arrival rate, req/s (replay; 0 = default 40)")
		peakRate     = fs.Float64("peak-rate", 0, "diurnal peak arrival rate, req/s (replay; 0 = default 220)")
		noise        = fs.Float64("noise", 0, "multiplicative load-noise amplitude (replay; 0 = default 0.04)")
		replayJobs   = fs.Int("replay-jobs", 0, "batch jobs in the replay trace (0 = default 40)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workload == "replay" {
		return trace.EncodeReplay(out, trace.GenerateReplay(trace.ReplayOptions{
			Seed:          *seed,
			Apps:          *apps,
			SeasonSeconds: *season,
			Seasons:       *seasons,
			SlotSeconds:   *slot,
			BaseRate:      *baseRate,
			PeakRate:      *peakRate,
			NoiseFrac:     *noise,
			Jobs:          *replayJobs,
		}))
	}
	var specs []*batch.Spec
	switch *workload {
	case "exp1":
		rng := *interarrival
		if rng == 260 {
			specs = trace.Experiment1Workload(*seed, *jobs)
		} else {
			// Custom inter-arrival: regenerate with the same job shape.
			specs = trace.Experiment3Workload(*seed, *jobs, 0, rng, rng)
		}
	case "exp2":
		specs = trace.Experiment2Workload(*seed, *jobs, *interarrival)
	case "exp3":
		specs = trace.Experiment3Workload(*seed, *heavy, *light, *heavyInter, *lightInter)
	default:
		return fmt.Errorf("unknown workload %q (exp1, exp2, exp3, replay)", *workload)
	}
	return trace.WriteJSON(out, specs)
}
