// Command tracegen generates reproducible job traces as JSON, suitable
// for feeding experiments or external tooling.
//
// Usage:
//
//	tracegen -workload exp1 -jobs 800 -seed 1 > exp1.json
//	tracegen -workload exp2 -jobs 800 -interarrival 100 > exp2.json
//	tracegen -workload exp3 > exp3.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynplace/internal/batch"
	"dynplace/internal/trace"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		workload     = fs.String("workload", "exp1", "workload family: exp1, exp2, exp3")
		jobs         = fs.Int("jobs", 800, "number of jobs (exp1, exp2)")
		interarrival = fs.Float64("interarrival", 260, "mean inter-arrival seconds (exp1, exp2)")
		heavy        = fs.Int("heavy", 200, "heavy-phase jobs (exp3)")
		light        = fs.Int("light", 40, "light-phase jobs (exp3)")
		heavyInter   = fs.Float64("heavy-interarrival", 180, "heavy-phase inter-arrival (exp3)")
		lightInter   = fs.Float64("light-interarrival", 600, "light-phase inter-arrival (exp3)")
		seed         = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var specs []*batch.Spec
	switch *workload {
	case "exp1":
		rng := *interarrival
		if rng == 260 {
			specs = trace.Experiment1Workload(*seed, *jobs)
		} else {
			// Custom inter-arrival: regenerate with the same job shape.
			specs = trace.Experiment3Workload(*seed, *jobs, 0, rng, rng)
		}
	case "exp2":
		specs = trace.Experiment2Workload(*seed, *jobs, *interarrival)
	case "exp3":
		specs = trace.Experiment3Workload(*seed, *heavy, *light, *heavyInter, *lightInter)
	default:
		return fmt.Errorf("unknown workload %q (exp1, exp2, exp3)", *workload)
	}
	return trace.WriteJSON(out, specs)
}
