package main

import (
	"strings"
	"testing"
)

func TestRunExample(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"-experiment", "example"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Scenario 1", "Scenario 2", "J3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperiment1Scaled(t *testing.T) {
	var buf strings.Builder
	err := run(&buf, []string{"-experiment", "1", "-nodes", "4", "-jobs", "20", "-points", "6"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Figure 2", "hypothetical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestRunExperiment2Scaled(t *testing.T) {
	var buf strings.Builder
	err := run(&buf, []string{"-experiment", "2", "-nodes", "3", "-jobs", "20",
		"-interarrivals", "800,200"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 3", "Figure 4", "Figure 5", "FCFS", "EDF", "APC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"-experiment", "9"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run(&buf, []string{"-experiment", "2", "-interarrivals", "abc"}); err == nil {
		t.Fatal("bad inter-arrival accepted")
	}
	if err := run(&buf, []string{"-bogusflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
