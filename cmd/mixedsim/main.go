// Command mixedsim reproduces the paper's evaluation from the command
// line. Each experiment prints the corresponding tables and figure
// series as text.
//
// Usage:
//
//	mixedsim -experiment example            # Section 4.3 worked example
//	mixedsim -experiment 1                  # Figure 2 + Table 2
//	mixedsim -experiment 2 [-jobs N] [-interarrivals 400,200,50]
//	mixedsim -experiment 3                  # Figures 6 and 7
//	mixedsim -experiment all
//
// Scale flags (-nodes, -jobs) shrink runs for quick inspection; defaults
// match the paper.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dynplace/internal/experiments"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mixedsim:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("mixedsim", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "which experiment: example, 1, 2, 3, all")
		nodes      = fs.Int("nodes", 25, "cluster size")
		jobs       = fs.Int("jobs", 800, "jobs per run (experiments 1 and 2)")
		inters     = fs.String("interarrivals", "400,350,300,250,200,150,100,50",
			"experiment 2 inter-arrival sweep (seconds, comma separated)")
		seed   = fs.Int64("seed", 1, "workload seed")
		points = fs.Int("points", 24, "series points printed per figure")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	runs := map[string]func() error{
		"example": func() error { return runExample(out) },
		"1":       func() error { return runExperiment1(out, *nodes, *jobs, *seed, *points) },
		"2":       func() error { return runExperiment2(out, *nodes, *jobs, *inters, *seed) },
		"3":       func() error { return runExperiment3(out, *nodes, *seed, *points) },
	}
	switch *experiment {
	case "all":
		for _, name := range []string{"example", "1", "2", "3"} {
			if err := runs[name](); err != nil {
				return err
			}
		}
		return nil
	default:
		fn, ok := runs[*experiment]
		if !ok {
			return fmt.Errorf("unknown experiment %q (example, 1, 2, 3, all)", *experiment)
		}
		return fn()
	}
}

func runExample(out io.Writer) error {
	fmt.Fprintln(out, experiments.Table1Text())
	fmt.Fprintln(out, experiments.WorkedExampleText())
	return nil
}

func runExperiment1(out io.Writer, nodes, jobs int, seed int64, points int) error {
	fmt.Fprintln(out, experiments.Table2Text())
	opts := experiments.DefaultExperiment1Options()
	opts.Nodes = nodes
	opts.Jobs = jobs
	opts.Seed = seed
	fmt.Fprintf(out, "Experiment One: %d nodes, %d jobs, exp(%v s) arrivals, T=%v s\n",
		opts.Nodes, opts.Jobs, opts.MeanInterarrival, opts.CycleSeconds)
	res, err := experiments.RunExperiment1(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, experiments.Figure2Text(res, points))
	return nil
}

func runExperiment2(out io.Writer, nodes, jobs int, inters string, seed int64) error {
	opts := experiments.DefaultExperiment2Options()
	opts.Nodes = nodes
	opts.Jobs = jobs
	opts.Seed = seed
	opts.Interarrivals = opts.Interarrivals[:0]
	for _, tok := range strings.Split(inters, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad inter-arrival %q: %w", tok, err)
		}
		opts.Interarrivals = append(opts.Interarrivals, v)
	}
	fmt.Fprintf(out, "Experiment Two: %d nodes, %d jobs per run, sweep %v\n",
		opts.Nodes, opts.Jobs, opts.Interarrivals)
	cells, err := experiments.RunExperiment2(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, experiments.Figure3Table(cells))
	fmt.Fprintln(out, experiments.Figure4Table(cells))
	for _, inter := range []float64{200, 50} {
		if containsFloat(opts.Interarrivals, inter) {
			fmt.Fprintln(out, experiments.Figure5Table(cells, inter))
		}
	}
	return nil
}

func runExperiment3(out io.Writer, nodes int, seed int64, points int) error {
	opts := experiments.DefaultExperiment3Options()
	opts.Nodes = nodes
	opts.Seed = seed
	fmt.Fprintf(out, "Experiment Three: %d nodes, %d+%d jobs at exp(%v)/exp(%v) s, horizon %v s\n",
		opts.Nodes, opts.HeavyJobs, opts.LightJobs,
		opts.HeavyInterarrival, opts.LightInterarrival, opts.Horizon)
	for _, config := range []experiments.Experiment3Config{
		experiments.ConfigDynamic,
		experiments.ConfigStatic9,
		experiments.ConfigStatic6,
	} {
		res, err := experiments.RunExperiment3(opts, config)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.Figure6Text(res, points))
		fmt.Fprintln(out, experiments.Figure7Text(res, points))
		fmt.Fprintf(out, "batch on-time rate: %.1f%%\n\n", 100*res.OnTimeRate)
	}
	return nil
}

func containsFloat(xs []float64, v float64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
