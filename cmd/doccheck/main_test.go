package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsBrokenLinkAndMissingPackageDoc(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "README.md"),
		"see [docs](docs/GONE.md) and [ok](ok.md) and [web](https://example.com)\n")
	write(t, filepath.Join(dir, "ok.md"), "fine\n")
	write(t, filepath.Join(dir, "internal", "bare", "bare.go"), "package bare\n")
	write(t, filepath.Join(dir, "internal", "good", "good.go"),
		"// Package good is documented.\npackage good\n")

	problems, err := run(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, `broken link "docs/GONE.md"`) {
		t.Errorf("broken link not reported:\n%s", joined)
	}
	if !strings.Contains(joined, "internal/bare: package has no package-level doc comment") {
		t.Errorf("missing package doc not reported:\n%s", joined)
	}
	if strings.Contains(joined, "ok.md") || strings.Contains(joined, "good") {
		t.Errorf("false positives:\n%s", joined)
	}
	if len(problems) != 2 {
		t.Errorf("problems = %d, want 2:\n%s", len(problems), joined)
	}
}

func TestIgnoresLinksInCode(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.md"),
		"```\n[x](missing-in-fence.md)\n```\nand `[y](missing-inline.md)` too\n")
	problems, err := run(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("problems in code spans reported: %v", problems)
	}
}

func TestAnchorsAndImagesResolve(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.md"),
		"[sec](b.md#section) [self](#local) ![img](img/x.png)\n")
	write(t, filepath.Join(dir, "b.md"), "# Section\n")
	write(t, filepath.Join(dir, "img", "x.png"), "png\n")
	problems, err := run(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

// TestRepositoryIsClean runs the real check over this repository: the
// docs job's guarantee, enforced from the test suite as well.
func TestRepositoryIsClean(t *testing.T) {
	problems, err := run("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("repository docs are broken:\n%s", strings.Join(problems, "\n"))
	}
}
