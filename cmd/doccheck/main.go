// Command doccheck keeps the documentation set honest in CI: it
// verifies that every relative link in the repository's markdown files
// points at a file that exists, that every Go package in the tree
// carries a package-level doc comment, and that every
// //dynplace:ignore suppression directive names an analyzer
// dynplacevet actually ships and carries a reason. It is the docs
// counterpart of go vet — make check and the CI docs job run it on
// every change, so a renamed file, an undocumented package or a
// misspelled suppression fails the build instead of rotting silently.
//
// Usage:
//
//	doccheck [-root DIR]
//
// The link check covers the maintained documentation set — README.md,
// CHANGES.md and everything under docs/ — but not the retrieval
// artifacts (PAPER.md, PAPERS.md, SNIPPETS.md), whose links reference
// material outside the repository. The package-comment guard covers the
// whole tree. External links (http, https, mailto) are not fetched; the
// check is purely structural, so it is fast and works offline. The
// directive check is textual (it parses comments, not types), so it
// covers _test.go files the full dynplacevet run does not load.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"dynplace/internal/analysis"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	problems, err := run(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// run returns one message per broken link, undocumented package or
// malformed suppression directive.
func run(root string) ([]string, error) {
	var problems []string
	md, pkgs, goFiles, err := collect(root)
	if err != nil {
		return nil, err
	}
	for _, f := range md {
		ps, err := checkMarkdown(root, f)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	for _, dir := range pkgs {
		ok, err := hasPackageComment(dir)
		if err != nil {
			return nil, err
		}
		if !ok {
			rel, _ := filepath.Rel(root, dir)
			problems = append(problems, fmt.Sprintf("%s: package has no package-level doc comment", rel))
		}
	}
	for _, f := range goFiles {
		ps, err := checkDirectives(root, f)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	return problems, nil
}

// collect walks the tree for markdown files, Go package directories
// and Go files (tests included, for the directive check), skipping VCS
// and vendor-ish directories. testdata is skipped too: the analysis
// package's golden files contain deliberately malformed directives.
func collect(root string) (md, pkgs, goFiles []string, err error) {
	seen := map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "vendor" || name == "testdata" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case strings.HasSuffix(name, ".md") && maintainedDoc(root, path):
			md = append(md, path)
		case strings.HasSuffix(name, ".go"):
			goFiles = append(goFiles, path)
			if strings.HasSuffix(name, "_test.go") {
				break
			}
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				pkgs = append(pkgs, dir)
			}
		}
		return nil
	})
	return md, pkgs, goFiles, err
}

// knownAnalyzers are the valid //dynplace:ignore targets: the
// analyzers dynplacevet ships, straight from the analysis package so
// the two can never drift.
var knownAnalyzers = func() map[string]bool {
	known := make(map[string]bool)
	for _, name := range analysis.Names() {
		known[name] = true
	}
	return known
}()

// checkDirectives parses one Go file's comments and validates every
// //dynplace:ignore directive in it: the analyzer named must be real
// and a reason is mandatory. Mirrors the validation dynplacevet itself
// performs, but also covers _test.go files.
func checkDirectives(root, path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	rel, _ := filepath.Rel(root, path)
	var problems []string
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//dynplace:ignore")
			if !ok {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			line := fset.Position(c.Pos()).Line
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				problems = append(problems, fmt.Sprintf("%s:%d: dynplace:ignore needs an analyzer name and a reason", rel, line))
			case !knownAnalyzers[fields[0]]:
				problems = append(problems, fmt.Sprintf("%s:%d: dynplace:ignore names unknown analyzer %q", rel, line, fields[0]))
			case len(fields) == 1:
				problems = append(problems, fmt.Sprintf("%s:%d: dynplace:ignore %s needs a reason", rel, line, fields[0]))
			}
		}
	}
	return problems, nil
}

// maintainedDoc reports whether a markdown file belongs to the
// documentation set this repository maintains (as opposed to retrieved
// paper/snippet corpora, which link to material that was never part of
// the tree).
func maintainedDoc(root, path string) bool {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	switch rel {
	case "PAPER.md", "PAPERS.md", "SNIPPETS.md":
		return false
	}
	return true
}

// linkRe matches inline markdown links and images: [text](target).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdown verifies every relative link target in one file exists.
func checkMarkdown(root, file string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var problems []string
	rel, _ := filepath.Rel(root, file)
	for _, m := range linkRe.FindAllStringSubmatch(stripCodeBlocks(string(data)), -1) {
		target := m[1]
		if skipLink(target) {
			continue
		}
		// Drop a trailing anchor; the structural check is file existence.
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
			if target == "" {
				continue
			}
		}
		resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
		if _, err := os.Stat(resolved); err != nil {
			problems = append(problems, fmt.Sprintf("%s: broken link %q", rel, m[1]))
		}
	}
	return problems, nil
}

// stripCodeBlocks blanks fenced code blocks and inline code spans so
// link-shaped text inside examples is not checked.
func stripCodeBlocks(s string) string {
	var b strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			b.WriteString("\n")
			continue
		}
		if inFence {
			b.WriteString("\n")
			continue
		}
		b.WriteString(stripInlineCode(line))
		b.WriteString("\n")
	}
	return b.String()
}

func stripInlineCode(line string) string {
	var b strings.Builder
	inCode := false
	for _, r := range line {
		if r == '`' {
			inCode = !inCode
			continue
		}
		if !inCode {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func skipLink(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}

// hasPackageComment reports whether any non-test Go file in dir carries
// a doc comment on its package clause.
func hasPackageComment(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, nil
		}
	}
	return false, nil
}
