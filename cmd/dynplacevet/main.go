// Command dynplacevet is the repository's invariant checker: a
// multichecker in the spirit of go vet whose five analyzers
// machine-enforce the contracts the reproduction's correctness rests
// on.
//
//	clockhygiene  deterministic packages never read the wall clock
//	detrange      map iteration never feeds ordering-sensitive state unsorted
//	lockguard     dynplace:guardedby fields are accessed with their mutex held
//	errwrap       sentinel errors are matched with errors.Is and wrapped with %w
//	nilsafe       dynplace:nilsafe instrument methods begin with a nil guard
//
// Usage:
//
//	dynplacevet [-list] [-root DIR] [packages]
//
// packages are go list patterns (default ./...). Exceptions carry an
// in-line justification:
//
//	//dynplace:ignore <analyzer> <reason>
//
// on the offending line or the comment line above it. A directive
// with an unknown analyzer or no reason is itself an error, so the
// exception budget stays visible in the tree. Exit status is 1 when
// findings remain, 2 on loader failure.
//
// The checker is built only on the standard library: packages are
// enumerated with `go list -deps -json` and type-checked from source,
// so it runs anywhere the Go toolchain does — no module dependencies,
// no compiled export data. make lint and the CI lint job run it on
// every change.
package main

import (
	"flag"
	"fmt"
	"os"

	"dynplace/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	root := flag.String("root", "", "directory to resolve packages from (default: current directory)")
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s:\n", a.Name)
			fmt.Printf("  %s\n", a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := &analysis.Loader{Dir: *root}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynplacevet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynplacevet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dynplacevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
