// Command dynplaced runs the application placement controller as a live
// daemon: the control loop re-evaluates web and batch placement every
// cycle against the current workload registry and node inventory, swaps
// the placement in atomically, and republishes request-dispatch weights.
// Workloads are added, observed and removed over a JSON HTTP API without
// restarts, and so are nodes: machines join (POST /v1/nodes), drain
// gracefully (POST /v1/nodes/{name}/drain), fail abruptly
// (POST /v1/nodes/{name}/fail — jobs are rescued with progress intact)
// and leave (DELETE /v1/nodes/{name}) while the daemon runs. The
// -cluster flag only seeds the initial inventory. The API is versioned
// under /v1 with the unversioned paths kept as deprecated aliases for
// one release; errors carry the {"error": {"code", "message"}} envelope
// (see docs/API.md). Request dispatch (POST /v1/route/{name}) goes
// through a lock-free router dataplane and accepts a {"n": N} body to
// route a batch in one call.
//
// With -state-dir the daemon is durable: every mutating API call and
// every applied cycle is journaled to an fsync'd write-ahead log,
// compacted into snapshots every -snapshot-every cycles, and replayed
// on the next boot — apps, batch jobs (accumulated progress intact) and
// the node inventory survive kill -9. Jobs that were running when the
// process died are rescued onto the recovered placement. SIGTERM exits
// gracefully: the cycle loop drains, a final snapshot is written, and
// the process exits 0. GET /state reports durability status; POST
// /state/snapshot compacts on demand.
//
// With -forecast the control loop plans each cycle against predicted
// next-cycle demand instead of the last observed arrival rate: an
// online per-app estimator (trend-aware smoothing plus a seasonal
// template of -forecast-season seconds in -forecast-slots buckets)
// learns from every load report and is scored against the naive
// last-value predictor. GET /v1/apps/{name}/forecast reports the
// prediction and the scorecard; dynplace_forecast_* gauges expose it
// to Prometheus (see docs/OPERATIONS.md for the fallback runbook).
//
// /healthz reports the control loop's real state: "recovering" while a
// boot-time replay is rebuilding state (mutating endpoints answer 503
// until it completes), "ok", "degraded" while placement is infeasible
// (e.g. after losing too many nodes), or "failing" when cycles error,
// with the last error attached.
//
// Observability: GET /metrics/prom serves the Prometheus text
// exposition (cycle/span/zone latency histograms, router and WAL
// timings, lifetime counters; gzip-encoded when the scraper sends
// Accept-Encoding: gzip), GET /debug/cycles/{n} the span timeline
// of a recent control cycle. Every cycle's decision provenance — who
// was placed, moved, evicted or denied, and which constraint bound —
// is kept in a bounded flight recorder: GET /v1/explain serves the
// last cycle, GET /v1/explain/apps/{name} one application's history
// (-explain-history sizes the window), and GET /v1/debug/bundle
// streams a self-diagnosing tar.gz (explanations, cycle traces,
// metrics, config, state, and the auto-captured CPU profile of the
// most recent slow cycle). Logs are structured (log/slog); choose
// the encoding with -log-format=text|json. Cycles slower than
// -slow-cycle seconds log a warning and arm the profile auto-capture;
// a -slow-cycle at or past -cycle is rejected at startup. -pprof-addr
// serves net/http/pprof on a separate, opt-in listener so profiling is
// never exposed on the API address. -version prints the build version
// and exits.
//
// Example:
//
//	dynplaced -listen :8080 -cluster 4x3000/4096 -cycle 30
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/apps -d '{"app":{"name":"shop",
//	  "arrivalRate":20,"demandPerRequest":50,"goalResponseTime":0.25,
//	  "memoryMB":1200}}'
//	curl -s -X POST localhost:8080/jobs -d '{"relative":true,"job":{
//	  "name":"nightly","workMcycles":3.9e6,"maxSpeedMHz":3000,
//	  "memoryMB":2000,"deadline":14400}}'
//	curl -s -X POST localhost:8080/nodes -d '{"name":"spare-1",
//	  "cpuMHz":3000,"memMB":4096}'
//	curl -s -X POST localhost:8080/nodes/node-2/drain
//	curl -s localhost:8080/placement
//	curl -s localhost:8080/metrics/prom
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dynplace/internal/cluster"
	"dynplace/internal/control"
	"dynplace/internal/daemon"
	"dynplace/internal/forecast"
	"dynplace/internal/store"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "HTTP listen address")
		spec      = flag.String("cluster", "4x3000/4096", "cluster inventory: comma-separated COUNTxCPU_MHZ/MEM_MB groups")
		cycle     = flag.Float64("cycle", 30, "control cycle length in seconds")
		queueCap  = flag.Int("queue", 128, "per-app overload-protection queue capacity (0 rejects immediately)")
		history   = flag.Int("history", 512, "per-cycle snapshots retained for /metrics")
		epsilon   = flag.Float64("epsilon", 0, "optimizer comparison resolution (0 = default)")
		passes    = flag.Int("passes", 0, "optimizer improvement passes per cycle (0 = default)")
		par       = flag.Int("parallelism", 0, "optimizer candidate-evaluation workers (1 = sequential, 0 = all CPUs)")
		shards    = flag.Int("shards", 0, "placement zones solved concurrently (0 = one flat problem; 1 = coordinator with a single zone)")
		shardSeed = flag.Int64("shard-seed", 0, "deterministic shard-rebalancing seed")
		exact     = flag.Bool("exact", false, "use exact bisection for the batch performance predictor")
		freeCosts = flag.Bool("free-costs", false, "disable placement-action costs (default: the paper's measured constants)")
		quiet     = flag.Bool("quiet", false, "suppress per-cycle log lines")
		stateDir  = flag.String("state-dir", "", "durable state directory (WAL + snapshots); empty runs memory-only")
		snapEvery = flag.Int("snapshot-every", 64, "cycles between compacting snapshots (negative disables periodic compaction)")
		logFormat = flag.String("log-format", "text", "log encoding: text or json")
		slowCycle = flag.Float64("slow-cycle", 0, "warn when a control cycle takes longer than this many seconds (0 = 80% of -cycle, negative disables)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
		traceN    = flag.Int("trace-cycles", 64, "cycle span timelines retained for /debug/cycles")
		explainN  = flag.Int("explain-history", 128, "cycle decision explanations retained for /v1/explain")
		version   = flag.Bool("version", false, "print the build version and exit")
		fcOn      = flag.Bool("forecast", false, "plan each cycle against predicted next-cycle demand instead of the last observation")
		fcSeason  = flag.Float64("forecast-season", 86400, "seasonal period of the demand estimator in seconds")
		fcSlots   = flag.Int("forecast-slots", 48, "seasonal template buckets per season")
	)
	flag.Parse()

	if *version {
		fmt.Printf("dynplaced %s %s\n", daemon.BuildVersion(), runtime.Version())
		return
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "dynplaced: -log-format: %q is not text or json\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	cl, err := cluster.Parse(*spec)
	if err != nil {
		fatal("bad -cluster", err)
	}
	costs := cluster.DefaultCostModel()
	if *freeCosts {
		costs = cluster.FreeCostModel()
	}
	logf := func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}
	if *quiet {
		logf = func(string, ...any) {}
	}
	qc := *queueCap
	if qc == 0 {
		qc = -1 // daemon.Config: negative disables queuing
	}
	var st *store.Store
	if *stateDir != "" {
		st, err = store.Open(*stateDir)
		if err != nil {
			fatal("bad -state-dir", err)
		}
	}
	var fcCfg *forecast.Config
	if *fcOn {
		fcCfg = &forecast.Config{SeasonSeconds: *fcSeason, Slots: *fcSlots}
	}
	d, err := daemon.New(daemon.Config{
		Cluster:      cl,
		CycleSeconds: *cycle,
		Costs:        costs,
		Dynamic: control.DynamicConfig{
			Epsilon:           *epsilon,
			MaxPasses:         *passes,
			ExactHypothetical: *exact,
			Parallelism:       *par,
			Shards:            *shards,
			ShardSeed:         *shardSeed,
			Forecast:          fcCfg,
		},
		QueueCap: qc,
		History:  *history,
		Logf:     logf,
		// Warnings (slow cycles, degraded states) always log, -quiet or
		// not: they are the lines operators alert on.
		Warnf: func(format string, args ...any) {
			logger.Warn(fmt.Sprintf(format, args...))
		},
		SlowCycleWarn:  *slowCycle,
		TraceCycles:    *traceN,
		ExplainHistory: *explainN,
		Store:          st,
		SnapshotEvery:  *snapEvery,
	})
	if err != nil {
		fatal("bad configuration", err)
	}

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener: nothing profiling-
		// related is ever reachable through the API address.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			if err := psrv.ListenAndServe(); err != nil {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           d.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// Serve before recovering so /healthz can answer "recovering" while
	// the replay rebuilds state — load balancers keep traffic away
	// instead of timing out. The daemon refuses mutating requests with
	// 503 until Recover completes, so a request routed early cannot be
	// acknowledged and then wiped by the replay.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if st != nil {
		logger.Info("durable state enabled", "dir", *stateDir, "snapshotEvery", *snapEvery)
		if err := d.Recover(); err != nil {
			fatal("recover", err)
		}
	}
	if err := d.Start(); err != nil {
		fatal("start", err)
	}
	defer d.Stop()
	mode := "flat"
	if *shards >= 1 {
		mode = fmt.Sprintf("%d zones", *shards)
	}
	logger.Info("managing cluster",
		"nodes", cl.Len(), "cpuMHz", cl.TotalCPU(), "memMB", cl.TotalMem(),
		"listen", *listen, "cycleSeconds", *cycle, "mode", mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("serve", err)
		}
	case s := <-sig:
		// Graceful shutdown: stop accepting requests, drain the cycle
		// loop, flush the store with a final snapshot, and exit 0.
		fmt.Fprintln(os.Stderr)
		logger.Info("shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		if err := d.Shutdown(); err != nil {
			fatal("final snapshot", err)
		}
		if st != nil {
			logger.Info("state flushed", "dir", *stateDir)
		}
	}
}
