// Command dynplaced runs the application placement controller as a live
// daemon: the control loop re-evaluates web and batch placement every
// cycle against the current workload registry and node inventory, swaps
// the placement in atomically, and republishes request-dispatch weights.
// Workloads are added, observed and removed over a JSON HTTP API without
// restarts, and so are nodes: machines join (POST /nodes), drain
// gracefully (POST /nodes/{name}/drain), fail abruptly
// (POST /nodes/{name}/fail — jobs are rescued with progress intact) and
// leave (DELETE /nodes/{name}) while the daemon runs. The -cluster flag
// only seeds the initial inventory.
//
// With -state-dir the daemon is durable: every mutating API call and
// every applied cycle is journaled to an fsync'd write-ahead log,
// compacted into snapshots every -snapshot-every cycles, and replayed
// on the next boot — apps, batch jobs (accumulated progress intact) and
// the node inventory survive kill -9. Jobs that were running when the
// process died are rescued onto the recovered placement. SIGTERM exits
// gracefully: the cycle loop drains, a final snapshot is written, and
// the process exits 0. GET /state reports durability status; POST
// /state/snapshot compacts on demand.
//
// /healthz reports the control loop's real state: "recovering" while a
// boot-time replay is rebuilding state (mutating endpoints answer 503
// until it completes), "ok", "degraded" while placement is infeasible
// (e.g. after losing too many nodes), or "failing" when cycles error,
// with the last error attached.
//
// Example:
//
//	dynplaced -listen :8080 -cluster 4x3000/4096 -cycle 30
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/apps -d '{"app":{"name":"shop",
//	  "arrivalRate":20,"demandPerRequest":50,"goalResponseTime":0.25,
//	  "memoryMB":1200}}'
//	curl -s -X POST localhost:8080/jobs -d '{"relative":true,"job":{
//	  "name":"nightly","workMcycles":3.9e6,"maxSpeedMHz":3000,
//	  "memoryMB":2000,"deadline":14400}}'
//	curl -s -X POST localhost:8080/nodes -d '{"name":"spare-1",
//	  "cpuMHz":3000,"memMB":4096}'
//	curl -s -X POST localhost:8080/nodes/node-2/drain
//	curl -s localhost:8080/placement
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynplace/internal/cluster"
	"dynplace/internal/control"
	"dynplace/internal/daemon"
	"dynplace/internal/store"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "HTTP listen address")
		spec      = flag.String("cluster", "4x3000/4096", "cluster inventory: comma-separated COUNTxCPU_MHZ/MEM_MB groups")
		cycle     = flag.Float64("cycle", 30, "control cycle length in seconds")
		queueCap  = flag.Int("queue", 128, "per-app overload-protection queue capacity (0 rejects immediately)")
		history   = flag.Int("history", 512, "per-cycle snapshots retained for /metrics")
		epsilon   = flag.Float64("epsilon", 0, "optimizer comparison resolution (0 = default)")
		passes    = flag.Int("passes", 0, "optimizer improvement passes per cycle (0 = default)")
		par       = flag.Int("parallelism", 0, "optimizer candidate-evaluation workers (1 = sequential, 0 = all CPUs)")
		shards    = flag.Int("shards", 0, "placement zones solved concurrently (0 = one flat problem; 1 = coordinator with a single zone)")
		shardSeed = flag.Int64("shard-seed", 0, "deterministic shard-rebalancing seed")
		exact     = flag.Bool("exact", false, "use exact bisection for the batch performance predictor")
		freeCosts = flag.Bool("free-costs", false, "disable placement-action costs (default: the paper's measured constants)")
		quiet     = flag.Bool("quiet", false, "suppress per-cycle log lines")
		stateDir  = flag.String("state-dir", "", "durable state directory (WAL + snapshots); empty runs memory-only")
		snapEvery = flag.Int("snapshot-every", 64, "cycles between compacting snapshots (negative disables periodic compaction)")
	)
	flag.Parse()

	cl, err := cluster.Parse(*spec)
	if err != nil {
		log.Fatalf("dynplaced: -cluster: %v", err)
	}
	costs := cluster.DefaultCostModel()
	if *freeCosts {
		costs = cluster.FreeCostModel()
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	qc := *queueCap
	if qc == 0 {
		qc = -1 // daemon.Config: negative disables queuing
	}
	var st *store.Store
	if *stateDir != "" {
		st, err = store.Open(*stateDir)
		if err != nil {
			log.Fatalf("dynplaced: -state-dir: %v", err)
		}
	}
	d, err := daemon.New(daemon.Config{
		Cluster:      cl,
		CycleSeconds: *cycle,
		Costs:        costs,
		Dynamic: control.DynamicConfig{
			Epsilon:           *epsilon,
			MaxPasses:         *passes,
			ExactHypothetical: *exact,
			Parallelism:       *par,
			Shards:            *shards,
			ShardSeed:         *shardSeed,
		},
		QueueCap:      qc,
		History:       *history,
		Logf:          logf,
		Store:         st,
		SnapshotEvery: *snapEvery,
	})
	if err != nil {
		log.Fatalf("dynplaced: %v", err)
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           d.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// Serve before recovering so /healthz can answer "recovering" while
	// the replay rebuilds state — load balancers keep traffic away
	// instead of timing out. The daemon refuses mutating requests with
	// 503 until Recover completes, so a request routed early cannot be
	// acknowledged and then wiped by the replay.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if st != nil {
		log.Printf("dynplaced: durable state in %s (snapshot every %d cycles)", *stateDir, *snapEvery)
		if err := d.Recover(); err != nil {
			log.Fatalf("dynplaced: recover: %v", err)
		}
	}
	if err := d.Start(); err != nil {
		log.Fatalf("dynplaced: %v", err)
	}
	defer d.Stop()
	mode := "flat placement"
	if *shards >= 1 {
		mode = fmt.Sprintf("%d placement zones", *shards)
	}
	log.Printf("dynplaced: managing %d nodes (%.0f MHz, %.0f MB) on %s, cycle %.1fs, %s",
		cl.Len(), cl.TotalCPU(), cl.TotalMem(), *listen, *cycle, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("dynplaced: %v", err)
		}
	case s := <-sig:
		// Graceful shutdown: stop accepting requests, drain the cycle
		// loop, flush the store with a final snapshot, and exit 0.
		fmt.Fprintln(os.Stderr)
		log.Printf("dynplaced: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("dynplaced: shutdown: %v", err)
		}
		if err := d.Shutdown(); err != nil {
			log.Fatalf("dynplaced: final snapshot: %v", err)
		}
		if st != nil {
			log.Printf("dynplaced: state flushed to %s", *stateDir)
		}
	}
}
