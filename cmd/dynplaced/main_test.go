package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestBadClusterFlag checks the binary rejects a malformed inventory.
func TestBadClusterFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	out, err := exec.Command("go", "run", ".", "-cluster", "nonsense").CombinedOutput()
	if err == nil {
		t.Fatalf("expected failure, got: %s", out)
	}
	if !strings.Contains(string(out), "-cluster") {
		t.Errorf("error output %q does not mention -cluster", out)
	}
}
